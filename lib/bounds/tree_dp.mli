(** Exact replica placement on tree networks: the closest-allocation
    dynamic program of Benoit, Rehn-Sonigo and Robert ("Strategies for
    Replica Placement in Tree Networks") and its QoS + bandwidth variant
    ("Optimal Replica Placement in Tree Networks with QoS and Bandwidth
    Constraints").

    On a tree rooted at the origin the per-object placement problem
    decouples and a leaf-up Pareto dynamic program finds the true integer
    optimum in polynomial time — the only topology family where the repo
    has an {e exact} oracle rather than an LP/Lagrangian lower bound.
    {!Bounds.Pipeline} registers [of_spec]-eligible MC-PERF instances as a
    third bound producer with quality [Exact] and zero gap by
    construction; the brute-force/differential tests in
    [test/test_tree_dp.ml] anchor everything else against it.

    Two service disciplines are supported:

    - {!Any_replica} (the paper's global routing): a demand is served by
      any replica within its QoS distance budget. This is the variant that
      maps to MC-PERF and feeds the pipeline.
    - {!Closest_ancestor} (the bandwidth variant): requests flow up the
      tree and are served by the first ancestor holding a replica (the
      {e Closest} policy), each replica serving at most [capacity] units
      of demand; the root serves any residue without a cap. Native-only —
      MC-PERF has no bandwidth term — but solved by the same Pareto DP
      with a flow/slack state.

    Exactness scope for [of_spec] (checked, never assumed): tree topology
    rooted at the origin, a single evaluation interval, a QoS goal,
    [gamma = delta = zeta = 0], the unconstrained "general" class, and the
    {e atomicity} condition — every demanding (node, object) pair that the
    origin does not already cover carries more read mass than the node's
    allowed uncovered share [(1 - fraction) * R_n], so any feasible
    integral solution covers every such pair and the fraction-q optimum
    equals the full-coverage optimum. Per-node storage capacities are
    expressed as the permitted set (a node may host replicas or not);
    multi-object storage-slot caps couple objects and are out of scope
    (heterogeneous Closest is NP-complete, Benoit et al.). *)

type service =
  | Any_replica
  | Closest_ancestor of { capacity : float }
      (** Per-replica, per-object service capacity; the root is uncapped. *)

type instance = private {
  nodes : int;
  root : int;
  parent : int array;  (** parent id; [-1] for the root *)
  up_ms : float array;  (** latency of the edge to the parent; 0 at root *)
  children : int list array;  (** increasing id order *)
  permitted : bool array;  (** replica sites; the root is never permitted *)
  demand : float array array;
      (** [demand.(k).(v)]: weighted read mass of object [k] at node [v]
          that must be served by a placed replica (origin-covered demand
          is cleared by {!of_spec} before it gets here) *)
  budget_ms : float array;
      (** per-node QoS distance budget: a replica serves node [v] only
          within [budget_ms.(v)] *)
  replica_cost : float array;  (** cost of one replica of object [k] *)
  service : service;
}

val make :
  parent:int array ->
  up_ms:float array ->
  ?permitted:bool array ->
  demand:float array array ->
  budget_ms:float array ->
  replica_cost:float array ->
  ?service:service ->
  unit ->
  instance
(** Build a native instance. [parent] must describe a tree: exactly one
    root ([-1]) and every other node's parent a valid id with no cycles.
    [permitted] defaults to everywhere but the root; the root is forced
    non-permitted. Demands, budgets, latencies and costs must be finite
    and non-negative. [service] defaults to [Any_replica]. *)

type solution = {
  cost : float;  (** sum over objects of replicas * [replica_cost] *)
  placement : int list array;
      (** per object, the replica sites in increasing id order *)
}

type outcome =
  | Optimal of solution
  | Unsatisfiable of { object_id : int }
      (** no permitted placement serves every demand of this object *)

val solve : instance -> outcome
(** The exact optimum, by a per-object leaf-up Pareto DP over states
    (replica count, distance to the nearest replica below, worst remaining
    slack of the uncovered demand below) — see DESIGN.md §12 for the
    recurrence and the dominance argument. Deterministic: identical
    instances produce identical placements. *)

val of_spec :
  ?placeable:bool array ->
  Mcperf.Spec.t ->
  Mcperf.Classes.t ->
  (instance, string) result
(** Map an MC-PERF spec to a native instance when the DP is provably
    exact for it (see the exactness scope above); [Error reason]
    otherwise. The caller decides what to do with ineligible specs —
    {!Bounds.Pipeline} falls back to the LP producers. *)

val placement_of : instance -> int list array -> Mcperf.Costing.placement
(** Express a per-object site list as an MC-PERF placement (interval-0
    bitmasks), e.g. to evaluate a solution with {!Mcperf.Costing.evaluate}
    or to hand it to the pipeline as a rounded result. *)
