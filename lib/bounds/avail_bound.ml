type cell = {
  class_name : string;
  fraction : float;
  feasible : bool;
  expected_bound : float;
  nominal_vars : int;
  vars : int;
  rows : int;
  exact : bool;
  iterations : int;
  reused : bool;
}

(* The scenario model shares Model.build's store/create skeleton and QoS
   rows, then appends per-scenario coverage terms. The nominal coverage
   variables carry no objective here: the degraded cost keeps the
   placement's sunk resources and replaces the nominal latency penalty
   with the per-scenario service terms, so pricing the nominal penalty
   too would overcount and break the lower bound. Class storage/replica
   padding and node-opening fees are likewise omitted — every placement
   pays at least the bare [alpha]/[beta]/[delta] resource terms, so
   dropping the extras only loosens the minimum. *)
type built = {
  problem : Lp.Problem.t;
  offset : float;
  node_totals : float array;
  always_covered : float array;
  qos_rows : int array;
  qos_has_terms : bool array;
  nominal_vars : int;
}

(* Same packing as Mcperf.Model (not exported there). *)
let pack ~intervals ~objects ~node ~interval ~object_id =
  ((node * objects) + object_id) * intervals + interval

(* Pipeline's Auto gate, kept in sync with [simplex_size_limit]. *)
let simplex_size_limit = 260

let build_scenario_model (perm : Mcperf.Permission.t)
    (scenarios : Avail.Scenario.t array) =
  let spec = perm.Mcperf.Permission.spec in
  let sys = spec.Mcperf.Spec.system in
  let demand = spec.Mcperf.Spec.demand in
  let nodes = Mcperf.Spec.node_count spec in
  let intervals = Mcperf.Spec.interval_count spec in
  let objects = Mcperf.Spec.object_count spec in
  let origin = sys.Topology.System.origin in
  let weight = demand.Workload.Demand.weight in
  let costs = spec.Mcperf.Spec.costs in
  let tlat_ms, fraction =
    match spec.Mcperf.Spec.goal with
    | Mcperf.Spec.Qos { tlat_ms; fraction } -> (tlat_ms, fraction)
    | Mcperf.Spec.Avg_latency _ ->
      invalid_arg "Avail_bound: expected-cost LP needs a QoS goal"
  in
  if Array.length scenarios = 0 then
    invalid_arg "Avail_bound: empty scenario set";
  let miss = Avail.Survive.miss_penalty spec in
  let gamma = costs.Mcperf.Spec.gamma in
  let b = Lp.Problem.Builder.create () in
  (* Write totals for the update-cost term, as in Model.build. *)
  let write_totals =
    if costs.Mcperf.Spec.delta > 0. then begin
      let w = Array.make_matrix objects intervals 0. in
      Array.iteri
        (fun k cells ->
          Array.iter
            (fun (c : Workload.Demand.cell) ->
              w.(k).(c.Workload.Demand.interval) <-
                w.(k).(c.Workload.Demand.interval) +. c.Workload.Demand.count)
            cells)
        demand.Workload.Demand.writes;
      Some w
    end
    else None
  in
  (* Store/create variables over the pruned support, with continuity. *)
  let store_tbl = Hashtbl.create 4096 in
  for m = 0 to nodes - 1 do
    if m <> origin then
      for k = 0 to objects - 1 do
        let smask = perm.Mcperf.Permission.store_mask.(m).(k) in
        if smask <> 0 then begin
          let w = weight.(k) in
          let prev_store = ref None in
          for i = 0 to intervals - 1 do
            if smask land (1 lsl i) <> 0 then begin
              let store_obj =
                (costs.Mcperf.Spec.alpha *. w)
                +.
                match write_totals with
                | Some wt -> costs.Mcperf.Spec.delta *. w *. wt.(k).(i)
                | None -> 0.
              in
              let sv =
                Lp.Problem.Builder.add_var b ~lo:0. ~hi:1. ~obj:store_obj ()
              in
              Hashtbl.add store_tbl
                (pack ~intervals ~objects ~node:m ~interval:i
                   ~object_id:k)
                sv;
              let row = ref [ (sv, 1.) ] in
              (match !prev_store with
              | Some pv -> row := (pv, -1.) :: !row
              | None -> ());
              if
                Mcperf.Permission.create_allowed perm ~node:m ~interval:i
                  ~object_id:k
              then begin
                let cv =
                  Lp.Problem.Builder.add_var b ~lo:0. ~hi:1.
                    ~obj:(costs.Mcperf.Spec.beta *. w)
                    ()
                in
                row := (cv, -1.) :: !row
              end;
              Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0. !row;
              prev_store := Some sv
            end
            else prev_store := None
          done
        end
      done
  done;
  (* Nominal QoS rows — zero-priced coverage variables, target rhs. *)
  let node_totals = Workload.Demand.node_read_totals demand in
  let always_covered = Array.make nodes 0. in
  let qos_terms = Array.make nodes [] in
  Array.iteri
    (fun k cells ->
      let w = weight.(k) in
      Array.iter
        (fun (c : Workload.Demand.cell) ->
          let n = c.Workload.Demand.node and i = c.Workload.Demand.interval in
          let rw = w *. c.Workload.Demand.count in
          if perm.Mcperf.Permission.origin_covered.(n) then
            always_covered.(n) <- always_covered.(n) +. rw
          else begin
            let covering = ref [] in
            for m = 0 to nodes - 1 do
              if perm.Mcperf.Permission.reach.(n).(m) then
                match
                  Hashtbl.find_opt store_tbl
                    (pack ~intervals ~objects ~node:m ~interval:i
                       ~object_id:k)
                with
                | Some sv -> covering := sv :: !covering
                | None -> ()
            done;
            if !covering <> [] then begin
              let cv = Lp.Problem.Builder.add_var b ~lo:0. ~hi:1. ~obj:0. () in
              Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0.
                ((cv, 1.) :: List.map (fun sv -> (sv, -1.)) !covering);
              qos_terms.(n) <- (cv, rw) :: qos_terms.(n)
            end
          end)
        cells)
    demand.Workload.Demand.reads;
  let qos_rows = Array.make nodes (-1) in
  let qos_has_terms = Array.make nodes false in
  for n = 0 to nodes - 1 do
    let rhs = (fraction *. node_totals.(n)) -. always_covered.(n) in
    if qos_terms.(n) <> [] then begin
      qos_has_terms.(n) <- true;
      qos_rows.(n) <- Lp.Problem.Builder.row_count b;
      Lp.Problem.Builder.add_row b Lp.Problem.Ge ~rhs qos_terms.(n)
    end
    else if rhs > 1e-9 then begin
      qos_rows.(n) <- Lp.Problem.Builder.row_count b;
      Lp.Problem.Builder.add_row b Lp.Problem.Ge ~rhs []
    end
  done;
  let nominal_vars = Lp.Problem.Builder.var_count b in
  (* Scenario terms: each read cell priced at its degraded fallback,
     discharged by coverage from a surviving reachable store. The prices
     mirror Survive.degrade exactly: reads from failed clients and reads
     orphaned by an origin loss pay the miss penalty, reads falling back
     to a live origin pay the late-service penalty. *)
  let offset = ref 0. in
  let w_s = 1. /. float_of_int (Array.length scenarios) in
  Array.iter
    (fun (s : Avail.Scenario.t) ->
      let down = s.Avail.Scenario.down in
      let origin_up = not down.(origin) in
      Array.iteri
        (fun k cells ->
          let w = weight.(k) in
          Array.iter
            (fun (c : Workload.Demand.cell) ->
              let n = c.Workload.Demand.node
              and i = c.Workload.Demand.interval in
              let rw = w *. c.Workload.Demand.count in
              if down.(n) then offset := !offset +. (w_s *. rw *. miss)
              else begin
                let price =
                  if origin_up then
                    gamma
                    *. Float.max 0.
                         (sys.Topology.System.latency.(n).(origin) -. tlat_ms)
                  else miss
                in
                if price > 0. then begin
                  let covering = ref [] in
                  for m = 0 to nodes - 1 do
                    if (not down.(m)) && perm.Mcperf.Permission.reach.(n).(m)
                    then
                      match
                        Hashtbl.find_opt store_tbl
                          (pack ~intervals ~objects ~node:m
                             ~interval:i ~object_id:k)
                      with
                      | Some sv -> covering := sv :: !covering
                      | None -> ()
                  done;
                  let charge = w_s *. rw *. price in
                  offset := !offset +. charge;
                  if !covering <> [] then begin
                    let cv =
                      Lp.Problem.Builder.add_var b ~lo:0. ~hi:1. ~obj:(-.charge)
                        ()
                    in
                    Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0.
                      ((cv, 1.) :: List.map (fun sv -> (sv, -1.)) !covering)
                  end
                end
              end)
            cells)
        demand.Workload.Demand.reads)
    scenarios;
  {
    problem = Lp.Problem.Builder.build b;
    offset = !offset;
    node_totals;
    always_covered;
    qos_rows;
    qos_has_terms;
    nominal_vars;
  }

(* Same re-targeting contract as Model.with_fraction: only the QoS rows
   read the fraction, so a sweep is an rhs patch — unless a node with no
   coverage options flips its explicit-infeasibility row, which forces a
   rebuild. Returns [None] on a shape flip. *)
let retarget built ~node_count ~fraction =
  let shape_ok = ref true in
  let patches = ref [] in
  for n = 0 to node_count - 1 do
    let rhs = (fraction *. built.node_totals.(n)) -. built.always_covered.(n) in
    if built.qos_has_terms.(n) then
      patches := (built.qos_rows.(n), rhs) :: !patches
    else begin
      let emitted = built.qos_rows.(n) >= 0 in
      if emitted <> (rhs > 1e-9) then shape_ok := false
      else if emitted then patches := (built.qos_rows.(n), rhs) :: !patches
    end
  done;
  if not !shape_ok then None
  else Some { built with problem = Lp.Problem.with_rhs built.problem !patches }

let expected_cost_cells ?(solver = Pipeline.Auto) ?placeable
    (spec : Mcperf.Spec.t) (cls : Mcperf.Classes.t) ~scenarios ~fractions =
  let perm0 = Mcperf.Permission.compute ?placeable spec cls in
  let nodes = Mcperf.Spec.node_count spec in
  let built0 = build_scenario_model perm0 scenarios in
  (* Warm-start state threaded through the sweep. *)
  let prepared = ref None in
  let warm = ref None in
  let solve_one fraction =
    let perm = Mcperf.Permission.with_fraction perm0 fraction in
    let infeasible reused =
      {
        class_name = cls.Mcperf.Classes.name;
        fraction;
        feasible = false;
        expected_bound = infinity;
        nominal_vars = built0.nominal_vars;
        vars = Lp.Problem.nvars built0.problem;
        rows = Lp.Problem.nrows built0.problem;
        exact = false;
        iterations = 0;
        reused;
      }
    in
    if not (Mcperf.Permission.feasible perm) then begin
      (* The oracle already knows no class placement can reach the goal;
         keep the warm-start chain untouched for the next fraction. *)
      infeasible (!prepared <> None)
    end
    else begin
      let built, fresh =
        match retarget built0 ~node_count:nodes ~fraction with
        | Some b -> (b, false)
        | None ->
          (build_scenario_model (Mcperf.Permission.with_fraction perm0 fraction)
             scenarios,
           true)
      in
      if fresh then begin
        prepared := None;
        warm := None
      end;
      let problem = built.problem in
      let nvars = Lp.Problem.nvars problem in
      let nrows = Lp.Problem.nrows problem in
      let use_simplex =
        match solver with
        | Pipeline.Exact_simplex -> true
        | Pipeline.First_order _ -> false
        | Pipeline.Auto ->
          nvars <= simplex_size_limit
          && nrows <= simplex_size_limit
      in
      let cell ~feasible ~bound ~exact ~iterations ~reused =
        {
          class_name = cls.Mcperf.Classes.name;
          fraction;
          feasible;
          expected_bound = (if feasible then bound +. built.offset else infinity);
          nominal_vars = built.nominal_vars;
          vars = nvars;
          rows = nrows;
          exact;
          iterations;
          reused;
        }
      in
      if use_simplex then begin
        match Lp.Simplex.solve problem with
        | Lp.Simplex.Optimal { objective; _ } ->
          cell ~feasible:true ~bound:objective ~exact:true ~iterations:0
            ~reused:false
        | Lp.Simplex.Infeasible ->
          cell ~feasible:false ~bound:infinity ~exact:true ~iterations:0
            ~reused:false
        | Lp.Simplex.Unbounded ->
          (* Impossible for a box-bounded minimization; treat as no bound. *)
          cell ~feasible:true ~bound:neg_infinity ~exact:false ~iterations:0
            ~reused:false
      end
      else begin
        let options =
          match solver with
          | Pipeline.First_order o -> o
          | _ -> Pipeline.default_pdhg_options
        in
        let reused = !prepared <> None in
        let prep = Lp.Pdhg.prepare ?reuse:!prepared problem in
        prepared := Some prep;
        let x0, y0 =
          match !warm with
          | Some (x, y) -> (Some x, Some y)
          | None -> (None, None)
        in
        let outcome = Lp.Pdhg.solve_prepared ~options ?x0 ?y0 prep in
        warm := Some (outcome.Lp.Pdhg.x, outcome.Lp.Pdhg.y);
        cell ~feasible:true ~bound:outcome.Lp.Pdhg.best_bound ~exact:false
          ~iterations:outcome.Lp.Pdhg.iterations ~reused
      end
    end
  in
  List.map solve_one fractions

let expected_cost_bound ?solver ?placeable spec cls ~scenarios =
  let fraction =
    match spec.Mcperf.Spec.goal with
    | Mcperf.Spec.Qos { fraction; _ } -> fraction
    | Mcperf.Spec.Avg_latency _ ->
      invalid_arg "Avail_bound: expected-cost LP needs a QoS goal"
  in
  match
    expected_cost_cells ?solver ?placeable spec cls ~scenarios
      ~fractions:[ fraction ]
  with
  | [ c ] -> c
  | _ -> assert false

type group_check = {
  group : string;
  size : int;
  failed : int array;
  violation : float;
  unavail_fraction : float;
  cost_ratio : float;
  survives : bool;
}

let subset_limit = 2048

(* C(n,k) with saturation at [limit + 1] so huge groups cannot overflow. *)
let choose_capped n k limit =
  let rec go acc i =
    if i > k then acc
    else
      let acc = acc * (n - i + 1) / i in
      if acc > limit then limit + 1 else go acc (i + 1)
  in
  if k > n then 0 else go 1 1

let rec combinations k items =
  if k = 0 then [ [] ]
  else
    match items with
    | [] -> []
    | x :: rest ->
      List.map (fun c -> x :: c) (combinations (k - 1) rest)
      @ combinations k rest

let k_failure_check ?(k = 2) ?max_violation (perm : Mcperf.Permission.t)
    placement ~(groups : Avail.Groups.t array) () =
  let spec = perm.Mcperf.Permission.spec in
  let nodes = Mcperf.Spec.node_count spec in
  let weight = spec.Mcperf.Spec.demand.Workload.Demand.weight in
  let node_totals =
    Workload.Demand.node_read_totals spec.Mcperf.Spec.demand
  in
  let max_violation =
    match max_violation with
    | Some v -> v
    | None -> (
      match spec.Mcperf.Spec.goal with
      | Mcperf.Spec.Qos { fraction; _ } -> 1. -. fraction
      | Mcperf.Spec.Avg_latency _ -> 0.)
  in
  let base = Mcperf.Costing.evaluate perm placement in
  (* Severity of failing one node: the demand it sources plus the replica
     mass it hosts — the greedy stand-in for exhaustive enumeration. *)
  let severity m =
    let replica_mass = ref 0. in
    Array.iteri
      (fun kid mask ->
        let bits = ref mask in
        let pop = ref 0 in
        while !bits <> 0 do
          bits := !bits land (!bits - 1);
          incr pop
        done;
        replica_mass := !replica_mass +. (weight.(kid) *. float_of_int !pop))
      placement.(m);
    node_totals.(m) +. !replica_mass
  in
  Array.map
    (fun (g : Avail.Groups.t) ->
      let members = Array.to_list g.Avail.Groups.members in
      let size = List.length members in
      let kk = min k size in
      let candidates =
        if choose_capped size kk subset_limit <= subset_limit then
          combinations kk members
        else begin
          (* Deterministic greedy: the kk members with the most weighted
             demand + replica mass (ties broken by node id). *)
          let scored =
            List.stable_sort
              (fun (sa, ma) (sb, mb) ->
                match compare sb sa with 0 -> compare ma mb | c -> c)
              (List.map (fun m -> (severity m, m)) members)
          in
          [ List.filteri (fun i _ -> i < kk) (List.map snd scored) ]
        end
      in
      let worst = ref None in
      List.iter
        (fun subset ->
          let down = Array.make nodes false in
          List.iter (fun m -> down.(m) <- true) subset;
          let d = Avail.Survive.degrade ~base perm placement ~down in
          let cost = d.Avail.Survive.degraded_cost in
          match !worst with
          | Some (best_cost, _, _) when cost <= best_cost -> ()
          | _ -> worst := Some (cost, subset, d))
        candidates;
      let _, subset, d =
        match !worst with Some w -> w | None -> assert false
      in
      {
        group = g.Avail.Groups.name;
        size;
        failed = Array.of_list subset;
        violation = d.Avail.Survive.violation;
        unavail_fraction = d.Avail.Survive.unavail_fraction;
        cost_ratio = d.Avail.Survive.cost_ratio;
        survives = d.Avail.Survive.violation <= max_violation +. 1e-12;
      })
    groups
