(** Availability-aware bound producers (the scenario side of the
    pipeline).

    Two producers ride alongside {!Pipeline.compute}'s nominal bound:

    {b Expected-cost scenario LP.} For a sampled correlated-failure
    scenario set (uniform weights), any placement's expected degraded
    cost — {!Avail.Survive.degrade} averaged over the scenarios — is
    bounded below by an LP: the MC-PERF storage/creation relaxation,
    the nominal QoS rows (the placement must meet the goal when
    everything is up), and per-scenario coverage terms pricing each
    read cell at its degraded fallback (the origin's latency penalty
    while the origin survives, {!Avail.Survive.miss_penalty} when it
    does not; reads from failed client sites pay the miss price
    outright). Coverage by a {e surviving} reachable replica discharges
    the price. Class storage/replica couplings are deliberately
    relaxed (padding is not charged), so the optimum is a valid — if
    slightly loose — lower bound for every placement of the class, and
    for the general class a bound on {e every} evaluated placement.

    Only the QoS rows read the target fraction, so a fraction sweep
    patches their rhs ({!Lp.Problem.with_rhs}) and reuses the prepared
    PDHG image ({!Lp.Pdhg.prepare}[ ?reuse]) plus the previous
    iterates, exactly like the nominal sweep cache.

    {b Worst-case k-failure check.} For each failure group, fail its
    worst [k] members (exhaustively for small groups, by demand-severity
    otherwise) and re-price the placement; a placement "survives" a
    group when the worst-case QoS-violation fraction stays within the
    goal's allowance. *)

type cell = {
  class_name : string;
  fraction : float;  (** nominal QoS target the cell was solved at *)
  feasible : bool;
  expected_bound : float;
      (** certified lower bound on the expected degraded cost of any
          class placement meeting the goal; [infinity] when infeasible *)
  nominal_vars : int;  (** variables in the nominal part of the model *)
  vars : int;
  rows : int;
  exact : bool;  (** solved by the exact simplex *)
  iterations : int;  (** PDHG iterations (0 for simplex) *)
  reused : bool;  (** prepared image + warm start carried over *)
}

val expected_cost_cells :
  ?solver:Pipeline.solver ->
  ?placeable:bool array ->
  Mcperf.Spec.t ->
  Mcperf.Classes.t ->
  scenarios:Avail.Scenario.t array ->
  fractions:float list ->
  cell list
(** One cell per fraction, in input order (sweep ascending to profit
    from warm starts). Requires a QoS-goal spec and a non-empty
    scenario set. Results are a pure function of
    (spec, class, scenarios, fraction) — byte-identical at any
    parallelism level of the caller. *)

val expected_cost_bound :
  ?solver:Pipeline.solver ->
  ?placeable:bool array ->
  Mcperf.Spec.t ->
  Mcperf.Classes.t ->
  scenarios:Avail.Scenario.t array ->
  cell
(** The single-fraction convenience: the spec's own goal fraction. *)

type group_check = {
  group : string;
  size : int;
  failed : int array;  (** the worst-case member subset that was failed *)
  violation : float;  (** QoS-violation fraction under that failure *)
  unavail_fraction : float;
  cost_ratio : float;  (** degraded cost / nominal cost *)
  survives : bool;  (** [violation <= max_violation] *)
}

val k_failure_check :
  ?k:int ->
  ?max_violation:float ->
  Mcperf.Permission.t ->
  Mcperf.Costing.placement ->
  groups:Avail.Groups.t array ->
  unit ->
  group_check array
(** Worst-case [k]-failure (default 2) per group, one entry per group in
    group order. Subsets are enumerated exhaustively while [size choose
    k] stays small (<= 2048) and otherwise seeded greedily from the
    members hosting the most weighted demand and replica mass; either
    way the choice is deterministic. [max_violation] defaults to the
    goal's own allowance ([1 - fraction] for QoS goals, 0 for
    average-latency goals). *)
