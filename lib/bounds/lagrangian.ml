type step_rule = Harmonic | Adaptive

type outcome = {
  bound : float;
  iterations : int;
  lambda : float array;
  subproblems_exact : int;
  subproblems_bounded : int;
  objects : int;
  bundles : int;
  rescaled_members : int;
}

(* Per-bundle-representative subproblem, built once and re-costed per
   lambda:

     min  alpha*w*sum store + beta*w*sum create
        + (RC per-object: alpha*I*w*R)
        - sum_cells lambda_(cell node) * rw_cell * covered_cell

   subject to the continuity rows (3)/(20) over the permission masks,
   covered <= sum of reachable stores, and (optionally) the per-object
   replica rows. All variables boxed, so both the simplex optimum and any
   PDHG dual certificate are finite. *)
type subproblem = {
  problem : Lp.Problem.t;
  covered_cells : (int * int * float) array;
      (* (covered var, cell node, weighted reads) *)
  size : int;  (* original variable count; drives the solver choice *)
  pre : Lp.Presolve.result;
      (* objective-independent reduction, computed once and valid for
         every lambda *)
  restored0 : float array;
      (* the reduced-space origin lifted back: fixed variables at their
         values, everything else 0 — the per-lambda offset of the
         eliminated variables is [dot objective restored0] *)
  mutable prep : Lp.Pdhg.prepared option;
      (* PDHG image of [pre.reduced], built on first use and reused for
         every lambda (the objective is shared in place, and neither the
         matrix nor the rhs ever changes) *)
}

let build_subproblem (perm : Mcperf.Permission.t) k =
  let spec = perm.Mcperf.Permission.spec in
  let cls = perm.Mcperf.Permission.cls in
  let demand = spec.Mcperf.Spec.demand in
  let nodes = Mcperf.Spec.node_count spec in
  let intervals = Mcperf.Spec.interval_count spec in
  let costs = spec.Mcperf.Spec.costs in
  let w = demand.Workload.Demand.weight.(k) in
  (* Mirror Model.build's storage-cost carrier: with a per-object replica
     constraint the alpha charge moves to the R variable (charging both
     would over-count and break the bound's validity). *)
  let alpha_on_store =
    cls.Mcperf.Classes.replicas <> Mcperf.Classes.Rc_per_object
  in
  let b = Lp.Problem.Builder.create () in
  let store_var = Hashtbl.create 64 in
  let rc_terms = Array.make intervals [] in
  for m = 0 to nodes - 1 do
    let smask = perm.Mcperf.Permission.store_mask.(m).(k) in
    if smask <> 0 then begin
      let prev = ref None in
      for i = 0 to intervals - 1 do
        if smask land (1 lsl i) <> 0 then begin
          let sv =
            Lp.Problem.Builder.add_var b ~lo:0. ~hi:1.
              ~obj:(if alpha_on_store then costs.Mcperf.Spec.alpha *. w else 0.)
              ()
          in
          Hashtbl.add store_var (m, i) sv;
          rc_terms.(i) <- (sv, 1.) :: rc_terms.(i);
          (* terms emitted in ascending variable order ([pv < sv < cv] by
             creation order) so the builder's sorted fast path applies *)
          let base =
            match !prev with
            | Some pv -> [ (pv, -1.); (sv, 1.) ]
            | None -> [ (sv, 1.) ]
          in
          let row =
            if
              Mcperf.Permission.create_allowed perm ~node:m ~interval:i
                ~object_id:k
            then begin
              let cv =
                Lp.Problem.Builder.add_var b ~lo:0. ~hi:1.
                  ~obj:(costs.Mcperf.Spec.beta *. w)
                  ()
              in
              base @ [ (cv, -1.) ]
            end
            else base
          in
          Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0. row;
          prev := Some sv
        end
        else prev := None
      done
    end
  done;
  (* Covered variables: objective coefficients are rewritten per lambda,
     so they start at 0. *)
  let covered = ref [] in
  Array.iter
    (fun (c : Workload.Demand.cell) ->
      if not perm.Mcperf.Permission.origin_covered.(c.node) then begin
        let covering = ref [] in
        for m = 0 to nodes - 1 do
          if perm.Mcperf.Permission.reach.(c.node).(m) then
            match Hashtbl.find_opt store_var (m, c.interval) with
            | Some sv -> covering := sv :: !covering
            | None -> ()
        done;
        if !covering <> [] then begin
          let cv = Lp.Problem.Builder.add_var b ~lo:0. ~hi:1. ~obj:0. () in
          Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0.
            ((cv, 1.) :: List.map (fun sv -> (sv, -1.)) !covering);
          covered := (cv, c.node, c.count *. w) :: !covered
        end
      end)
    demand.Workload.Demand.reads.(k);
  (* Per-object replica constraint (17a): does not couple objects. *)
  (match cls.Mcperf.Classes.replicas with
  | Mcperf.Classes.Rc_per_object ->
    let has_any = Array.exists (fun terms -> terms <> []) rc_terms in
    if has_any then begin
      let rv =
        Lp.Problem.Builder.add_var b ~lo:0.
          ~hi:(float_of_int (nodes - 1))
          ~obj:(costs.Mcperf.Spec.alpha *. float_of_int intervals *. w)
          ()
      in
      Array.iter
        (fun terms ->
          if terms <> [] then
            Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0.
              ((rv, -1.) :: terms))
        rc_terms
    end
  | Mcperf.Classes.Rc_none | Mcperf.Classes.Rc_uniform -> ());
  let problem = Lp.Problem.Builder.build b in
  (* Presolve once, with the objective-dependent rule disabled: the
     pricing loop rewrites the covered coefficients in place between
     solves, so only constraint-driven reductions may be frozen. *)
  let pre = Lp.Presolve.run ~fix_unreferenced_vars:false problem in
  (match pre.Lp.Presolve.status with
  | `Infeasible ->
    invalid_arg "Lagrangian: subproblem should be feasible and bounded"
  | `Unchanged | `Reduced -> ());
  let restored0 =
    pre.Lp.Presolve.restore
      (Array.make (Lp.Problem.nvars pre.Lp.Presolve.reduced) 0.)
  in
  {
    problem;
    covered_cells = Array.of_list !covered;
    size = Lp.Problem.nvars problem;
    pre;
    restored0;
    prep = None;
  }

let simplex_size_limit = 200

(* Solve (or validly lower-bound) a subproblem whose covered-variable
   objective has been set for the current lambda. Returns the bound, the
   per-cell coverage contributions of the (approximate) minimizer — one
   entry per [covered_cells] slot, in order — and how the solve was
   settled. Contributions come back as a plain float array so a shard of
   solves can cross a worker pipe and merge into the subgradient exactly
   as the sequential path would. *)
let solve_sub sub =
  if Lp.Problem.nvars sub.problem = 0 then (0., [||], `Trivial)
  else begin
    let pre = sub.pre in
    let red = pre.Lp.Presolve.reduced in
    let off =
      Util.Vecops.dot sub.problem.Lp.Problem.objective sub.restored0
    in
    let contribs x =
      Array.map (fun (cv, _, rw) -> rw *. x.(cv)) sub.covered_cells
    in
    if Lp.Problem.nvars red = 0 then
      (* Every variable was fixed by the constraints alone: the feasible
         set is the single point [restored0], whatever the objective. *)
      (off, contribs sub.restored0, `Exact)
    else if sub.size <= simplex_size_limit then begin
      match Lp.Simplex.solve red with
      | Lp.Simplex.Optimal { x; objective } ->
        (objective +. off, contribs (pre.Lp.Presolve.restore x), `Exact)
      | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
        invalid_arg "Lagrangian: subproblem should be feasible and bounded"
    end
    else begin
      let prep =
        match sub.prep with
        | Some p -> p
        | None ->
          let p = Lp.Pdhg.prepare red in
          sub.prep <- Some p;
          p
      in
      let out =
        Lp.Pdhg.solve_prepared
          ~options:
            { Lp.Pdhg.default_options with max_iters = 1_500; rel_tol = 1e-6 }
          prep
      in
      ( out.Lp.Pdhg.best_bound +. off,
        contribs (pre.Lp.Presolve.restore out.Lp.Pdhg.x),
        `Bounded )
    end
  end

(* The builder assigns objective coefficients at construction; rewriting
   them per lambda mutates the (non-private-to-us) objective array in
   place, which is safe because we own these problems. The reduced
   problem's objective is kept in sync through [var_map]; eliminated
   covered variables surface through the [restored0] offset instead. *)
let set_lambda_objective sub lambda =
  let red = sub.pre.Lp.Presolve.reduced in
  let var_map = sub.pre.Lp.Presolve.var_map in
  Array.iter
    (fun (cv, n, rw) ->
      let c = -.(lambda.(n) *. rw) in
      sub.problem.Lp.Problem.objective.(cv) <- c;
      let rj = var_map.(cv) in
      if rj >= 0 then red.Lp.Problem.objective.(rj) <- c)
    sub.covered_cells

(* Contiguous [lo, hi) ranges covering [0, n), sizes differing by at most
   one; the shard layout depends only on [shards] and [n], never on
   timing, so dispatch is deterministic. *)
let shard_ranges ~shards n =
  let shards = max 1 (min shards n) in
  let base = n / shards and extra = n mod shards in
  let ranges = ref [] in
  let lo = ref 0 in
  for s = 0 to shards - 1 do
    let len = base + if s < extra then 1 else 0 in
    ranges := (!lo, !lo + len) :: !ranges;
    lo := !lo + len
  done;
  List.rev !ranges

(* One batch solve of every representative subproblem under the current
   lambda. The parent rewrites all covered-variable objectives *before*
   dispatching, so forked workers inherit the costed image through [fork]
   and only shard ranges / result payloads are marshalled. Workers rebuild
   their [Pdhg.prepare] images from scratch; [prepare] is deterministic
   and [Marshal] preserves float bits, so shard results are bitwise those
   of the sequential path — byte-identity at any [jobs] is the standing
   invariant of the sweep layers. *)
let solve_batch ~jobs subs lambda =
  Array.iter (fun sub -> set_lambda_objective sub lambda) subs;
  let nb = Array.length subs in
  let vals = Array.make nb (0., [||]) in
  let exact = ref 0 and bounded = ref 0 in
  if nb > 0 then begin
    let solve_shard (lo, hi) =
      let e = ref 0 and bd = ref 0 in
      let out =
        Array.init (hi - lo) (fun i ->
            let v, c, tag = solve_sub subs.(lo + i) in
            (match tag with
            | `Exact -> incr e
            | `Bounded -> incr bd
            | `Trivial -> ());
            (v, c))
      in
      (out, !e, !bd)
    in
    let shards = shard_ranges ~shards:(if jobs <= 1 then 1 else jobs * 4) nb in
    let results = Util.Parallel.map_values ~jobs ~f:solve_shard shards in
    List.iter2
      (fun (lo, _) (out, e, bd) ->
        Array.blit out 0 vals lo (Array.length out);
        exact := !exact + e;
        bounded := !bounded + bd)
      shards results
  end;
  (vals, !exact, !bounded)

(* Fold the per-representative solves back over the member objects, in
   ascending object order with the same additions the unbundled loop
   would perform — on a homogeneous bundle (equal weights) the merged
   totals are bitwise those of solving every member individually, which
   is what makes the bundled-vs-unbundled bound delta exactly 0. Members
   whose weight differs from their representative's rescale by w/w_rep
   with a two-ulp downward nudge that dominates the rescale's rounding,
   so the transferred value stays a valid lower bound on the member's
   true subproblem minimum (the minimum is linear in the weight — see
   {!Mcperf.Bundle}). *)
let merge_members ~nodes ~(bundle : Mcperf.Bundle.t) ~weight ~subs vals =
  let coverage = Array.make nodes 0. in
  let sub_total = ref 0. in
  for k = 0 to bundle.Mcperf.Bundle.objects - 1 do
    let b = bundle.Mcperf.Bundle.bundle_of.(k) in
    let v, contribs = vals.(b) in
    let cells = subs.(b).covered_cells in
    if bundle.Mcperf.Bundle.exact_member.(k) then begin
      sub_total := !sub_total +. v;
      Array.iteri
        (fun i (_, n, _) -> coverage.(n) <- coverage.(n) +. contribs.(i))
        cells
    end
    else begin
      let r =
        weight.(k) /. weight.(bundle.Mcperf.Bundle.representative.(b))
      in
      let sv = v *. r in
      let guarded = sv -. (2. *. Float.abs sv *. epsilon_float) in
      sub_total := !sub_total +. guarded;
      Array.iteri
        (fun i (_, n, _) ->
          coverage.(n) <- coverage.(n) +. (contribs.(i) *. r))
        cells
    end
  done;
  (!sub_total, coverage)

(* Projected subgradient ascent on the QoS multipliers for one fraction's
   requirement vector [t_n]. *)
let ascend ~iterations ~step_scale ~step_rule ~jobs ~t_n ~(spec : Mcperf.Spec.t)
    ~bundle ~subs =
  let nodes = Array.length t_n in
  let weight = spec.Mcperf.Spec.demand.Workload.Demand.weight in
  let lambda = Array.make nodes 0. in
  let best_bound = ref 0. in
  let best_lambda = ref (Array.copy lambda) in
  let exact_total = ref 0 and bounded_total = ref 0 in
  let costs = spec.Mcperf.Spec.costs in
  let unit_cost =
    Float.max (costs.Mcperf.Spec.alpha +. costs.Mcperf.Spec.beta) 1e-6
  in
  (* Adaptive rule state: start at the harmonic rule's first step and
     halve after three consecutive non-improving iterations — a Polyak-
     style geometric backoff that needs no clocks and no target value, so
     trajectories stay deterministic. Both rules depend only on the past,
     so the iterate sequence at [iterations = i] is a prefix of the one
     at [iterations = j > i] and the best bound is monotone in the
     iteration budget. *)
  let adaptive_step = ref (step_scale *. unit_cost) in
  let stalls = ref 0 in
  for t = 0 to iterations - 1 do
    let vals, e, bd = solve_batch ~jobs subs lambda in
    exact_total := !exact_total + e;
    bounded_total := !bounded_total + bd;
    let sub_total, coverage = merge_members ~nodes ~bundle ~weight ~subs vals in
    let value = Util.Vecops.dot lambda t_n +. sub_total in
    let improved = value > !best_bound in
    if improved then begin
      best_bound := value;
      best_lambda := Array.copy lambda
    end;
    (* Projected subgradient step on g_n = T_n - coverage_n, normalized
       to unit infinity-norm so the multiplier scale tracks the unit
       costs rather than the (much larger) demand counts. *)
    let g = Array.init nodes (fun n -> t_n.(n) -. coverage.(n)) in
    let gmax = Util.Vecops.norm_inf g in
    if gmax > 0. then begin
      let step =
        match step_rule with
        | Harmonic -> step_scale *. unit_cost /. float_of_int (1 + t)
        | Adaptive ->
          if improved then stalls := 0
          else begin
            incr stalls;
            if !stalls >= 3 then begin
              adaptive_step := !adaptive_step /. 2.;
              stalls := 0
            end
          end;
          !adaptive_step
      in
      for n = 0 to nodes - 1 do
        lambda.(n) <- Float.max 0. (lambda.(n) +. (step *. g.(n) /. gmax))
      done
    end
  done;
  (!best_bound, !best_lambda, !exact_total, !bounded_total)

let require_qos ~who (spec : Mcperf.Spec.t) =
  match spec.Mcperf.Spec.goal with
  | Mcperf.Spec.Qos _ -> ()
  | Mcperf.Spec.Avg_latency _ ->
    invalid_arg (who ^ ": requires a QoS goal")

let infeasible_outcome ~nodes ~objects =
  {
    bound = infinity;
    iterations = 0;
    lambda = Array.make nodes 0.;
    subproblems_exact = 0;
    subproblems_bounded = 0;
    objects;
    bundles = 0;
    rescaled_members = 0;
  }

(* Always-covered demand reduces the QoS requirements (same constants as
   the monolithic model); it never reads the fraction, so one vector
   serves a whole sweep. *)
let always_covered (spec : Mcperf.Spec.t) (perm : Mcperf.Permission.t) =
  let nodes = Mcperf.Spec.node_count spec in
  let always = Array.make nodes 0. in
  Array.iteri
    (fun k cells ->
      let w = spec.Mcperf.Spec.demand.Workload.Demand.weight.(k) in
      Array.iter
        (fun (c : Workload.Demand.cell) ->
          if perm.Mcperf.Permission.origin_covered.(c.node) then
            always.(c.node) <- always.(c.node) +. (c.count *. w))
        cells)
    spec.Mcperf.Spec.demand.Workload.Demand.reads;
  always

let bundle_and_subs ~bundling perm =
  let bundle =
    if bundling then Mcperf.Bundle.compute perm else Mcperf.Bundle.trivial perm
  in
  let subs =
    Array.map (build_subproblem perm) bundle.Mcperf.Bundle.representative
  in
  (bundle, subs)

let run ~iterations ~step_scale ~step_rule ~jobs ~fraction ~spec ~bundle ~subs
    ~node_totals ~always =
  let nodes = Array.length node_totals in
  let t_n =
    Array.init nodes (fun n ->
        Float.max 0. ((fraction *. node_totals.(n)) -. always.(n)))
  in
  let best, lambda, exact, bounded =
    ascend ~iterations ~step_scale ~step_rule ~jobs ~t_n ~spec ~bundle ~subs
  in
  {
    bound = best;
    iterations;
    lambda;
    subproblems_exact = exact;
    subproblems_bounded = bounded;
    objects = bundle.Mcperf.Bundle.objects;
    bundles = bundle.Mcperf.Bundle.count;
    rescaled_members = bundle.Mcperf.Bundle.rescaled;
  }

let bound ?(iterations = 60) ?(step_scale = 1.0) ?(step_rule = Harmonic)
    ?(jobs = 1) ?(bundling = true) spec cls =
  require_qos ~who:"Lagrangian.bound" spec;
  let fraction =
    match spec.Mcperf.Spec.goal with
    | Mcperf.Spec.Qos { fraction; _ } -> fraction
    | Mcperf.Spec.Avg_latency _ -> assert false
  in
  let perm = Mcperf.Permission.compute spec cls in
  let nodes = Mcperf.Spec.node_count spec in
  let objects = Mcperf.Spec.object_count spec in
  if not (Mcperf.Permission.feasible perm) then
    infeasible_outcome ~nodes ~objects
  else begin
    let node_totals =
      Workload.Demand.node_read_totals spec.Mcperf.Spec.demand
    in
    let always = always_covered spec perm in
    let bundle, subs = bundle_and_subs ~bundling perm in
    run ~iterations ~step_scale ~step_rule ~jobs ~fraction ~spec ~bundle ~subs
      ~node_totals ~always
  end

let sweep ?(iterations = 60) ?(step_scale = 1.0) ?(step_rule = Harmonic)
    ?(jobs = 1) ?(bundling = true) spec cls ~fractions =
  require_qos ~who:"Lagrangian.sweep" spec;
  let perm = Mcperf.Permission.compute spec cls in
  let nodes = Mcperf.Spec.node_count spec in
  let objects = Mcperf.Spec.object_count spec in
  let node_totals = Workload.Demand.node_read_totals spec.Mcperf.Spec.demand in
  let always = always_covered spec perm in
  (* The permission masks never read the fraction, so the bundling and
     every representative subproblem are shared across the whole sweep;
     only the requirement vector t_n changes per point. Built lazily so a
     sweep of entirely infeasible points does no model work. *)
  let shared = lazy (bundle_and_subs ~bundling perm) in
  List.map
    (fun fraction ->
      let permq = Mcperf.Permission.with_fraction perm fraction in
      if not (Mcperf.Permission.feasible permq) then
        (fraction, infeasible_outcome ~nodes ~objects)
      else begin
        let bundle, subs = Lazy.force shared in
        ( fraction,
          run ~iterations ~step_scale ~step_rule ~jobs ~fraction ~spec ~bundle
            ~subs ~node_totals ~always )
      end)
    fractions
