type outcome = {
  bound : float;
  iterations : int;
  lambda : float array;
  subproblems_exact : int;
  subproblems_bounded : int;
}

(* Per-object subproblem, built once and re-costed per lambda:

     min  alpha*w*sum store + beta*w*sum create
        + (RC per-object: alpha*I*w*R)
        - sum_cells lambda_(cell node) * rw_cell * covered_cell

   subject to the continuity rows (3)/(20) over the permission masks,
   covered <= sum of reachable stores, and (optionally) the per-object
   replica rows. All variables boxed, so both the simplex optimum and any
   PDHG dual certificate are finite. *)
type subproblem = {
  problem : Lp.Problem.t;
  covered_cells : (int * int * float) array;
      (* (covered var, cell node, weighted reads) *)
  size : int;  (* original variable count; drives the solver choice *)
  pre : Lp.Presolve.result;
      (* objective-independent reduction, computed once and valid for
         every lambda *)
  restored0 : float array;
      (* the reduced-space origin lifted back: fixed variables at their
         values, everything else 0 — the per-lambda offset of the
         eliminated variables is [dot objective restored0] *)
  mutable prep : Lp.Pdhg.prepared option;
      (* PDHG image of [pre.reduced], built on first use and reused for
         every lambda (the objective is shared in place, and neither the
         matrix nor the rhs ever changes) *)
}

let build_subproblem (perm : Mcperf.Permission.t) k =
  let spec = perm.Mcperf.Permission.spec in
  let cls = perm.Mcperf.Permission.cls in
  let demand = spec.Mcperf.Spec.demand in
  let nodes = Mcperf.Spec.node_count spec in
  let intervals = Mcperf.Spec.interval_count spec in
  let costs = spec.Mcperf.Spec.costs in
  let w = demand.Workload.Demand.weight.(k) in
  (* Mirror Model.build's storage-cost carrier: with a per-object replica
     constraint the alpha charge moves to the R variable (charging both
     would over-count and break the bound's validity). *)
  let alpha_on_store =
    cls.Mcperf.Classes.replicas <> Mcperf.Classes.Rc_per_object
  in
  let b = Lp.Problem.Builder.create () in
  let store_var = Hashtbl.create 64 in
  let rc_terms = Array.make intervals [] in
  for m = 0 to nodes - 1 do
    let smask = perm.Mcperf.Permission.store_mask.(m).(k) in
    if smask <> 0 then begin
      let prev = ref None in
      for i = 0 to intervals - 1 do
        if smask land (1 lsl i) <> 0 then begin
          let sv =
            Lp.Problem.Builder.add_var b ~lo:0. ~hi:1.
              ~obj:(if alpha_on_store then costs.Mcperf.Spec.alpha *. w else 0.)
              ()
          in
          Hashtbl.add store_var (m, i) sv;
          rc_terms.(i) <- (sv, 1.) :: rc_terms.(i);
          let row = ref [ (sv, 1.) ] in
          (match !prev with Some pv -> row := (pv, -1.) :: !row | None -> ());
          if Mcperf.Permission.create_allowed perm ~node:m ~interval:i
               ~object_id:k
          then begin
            let cv =
              Lp.Problem.Builder.add_var b ~lo:0. ~hi:1.
                ~obj:(costs.Mcperf.Spec.beta *. w)
                ()
            in
            row := (cv, -1.) :: !row
          end;
          Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0. !row;
          prev := Some sv
        end
        else prev := None
      done
    end
  done;
  (* Covered variables: objective coefficients are rewritten per lambda,
     so they start at 0. *)
  let covered = ref [] in
  Array.iter
    (fun (c : Workload.Demand.cell) ->
      if not perm.Mcperf.Permission.origin_covered.(c.node) then begin
        let covering = ref [] in
        for m = 0 to nodes - 1 do
          if perm.Mcperf.Permission.reach.(c.node).(m) then
            match Hashtbl.find_opt store_var (m, c.interval) with
            | Some sv -> covering := sv :: !covering
            | None -> ()
        done;
        if !covering <> [] then begin
          let cv = Lp.Problem.Builder.add_var b ~lo:0. ~hi:1. ~obj:0. () in
          Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0.
            ((cv, 1.) :: List.map (fun sv -> (sv, -1.)) !covering);
          covered := (cv, c.node, c.count *. w) :: !covered
        end
      end)
    demand.Workload.Demand.reads.(k);
  (* Per-object replica constraint (17a): does not couple objects. *)
  (match cls.Mcperf.Classes.replicas with
  | Mcperf.Classes.Rc_per_object ->
    let has_any = Array.exists (fun terms -> terms <> []) rc_terms in
    if has_any then begin
      let rv =
        Lp.Problem.Builder.add_var b ~lo:0.
          ~hi:(float_of_int (nodes - 1))
          ~obj:(costs.Mcperf.Spec.alpha *. float_of_int intervals *. w)
          ()
      in
      Array.iter
        (fun terms ->
          if terms <> [] then
            Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0.
              ((rv, -1.) :: terms))
        rc_terms
    end
  | Mcperf.Classes.Rc_none | Mcperf.Classes.Rc_uniform -> ());
  let problem = Lp.Problem.Builder.build b in
  (* Presolve once, with the objective-dependent rule disabled: the
     pricing loop rewrites the covered coefficients in place between
     solves, so only constraint-driven reductions may be frozen. *)
  let pre = Lp.Presolve.run ~fix_unreferenced_vars:false problem in
  (match pre.Lp.Presolve.status with
  | `Infeasible ->
    invalid_arg "Lagrangian: subproblem should be feasible and bounded"
  | `Unchanged | `Reduced -> ());
  let restored0 =
    pre.Lp.Presolve.restore
      (Array.make (Lp.Problem.nvars pre.Lp.Presolve.reduced) 0.)
  in
  {
    problem;
    covered_cells = Array.of_list !covered;
    size = Lp.Problem.nvars problem;
    pre;
    restored0;
    prep = None;
  }

let simplex_size_limit = 200

(* Solve (or validly lower-bound) a subproblem whose covered-variable
   objective has been set for the current lambda. Returns the bound and
   the coverage per node achieved by the (approximate) minimizer, for the
   subgradient. *)
let solve_sub sub ~coverage_acc ~exact_count ~bounded_count =
  if Lp.Problem.nvars sub.problem = 0 then 0.
  else begin
    let pre = sub.pre in
    let red = pre.Lp.Presolve.reduced in
    let off =
      Util.Vecops.dot sub.problem.Lp.Problem.objective sub.restored0
    in
    let record x =
      Array.iter
        (fun (cv, n, rw) ->
          coverage_acc.(n) <- coverage_acc.(n) +. (rw *. x.(cv)))
        sub.covered_cells
    in
    if Lp.Problem.nvars red = 0 then begin
      (* Every variable was fixed by the constraints alone: the feasible
         set is the single point [restored0], whatever the objective. *)
      incr exact_count;
      record sub.restored0;
      off
    end
    else if sub.size <= simplex_size_limit then begin
      match Lp.Simplex.solve red with
      | Lp.Simplex.Optimal { x; objective } ->
        incr exact_count;
        record (pre.Lp.Presolve.restore x);
        objective +. off
      | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
        invalid_arg "Lagrangian: subproblem should be feasible and bounded"
    end
    else begin
      incr bounded_count;
      let prep =
        match sub.prep with
        | Some p -> p
        | None ->
          let p = Lp.Pdhg.prepare red in
          sub.prep <- Some p;
          p
      in
      let out =
        Lp.Pdhg.solve_prepared
          ~options:
            { Lp.Pdhg.default_options with max_iters = 1_500; rel_tol = 1e-6 }
          prep
      in
      record (pre.Lp.Presolve.restore out.Lp.Pdhg.x);
      out.Lp.Pdhg.best_bound +. off
    end
  end

(* The builder assigns objective coefficients at construction; rewriting
   them per lambda mutates the (non-private-to-us) objective array in
   place, which is safe because we own these problems. The reduced
   problem's objective is kept in sync through [var_map]; eliminated
   covered variables surface through the [restored0] offset instead. *)
let set_lambda_objective sub lambda =
  let red = sub.pre.Lp.Presolve.reduced in
  let var_map = sub.pre.Lp.Presolve.var_map in
  Array.iter
    (fun (cv, n, rw) ->
      let c = -.(lambda.(n) *. rw) in
      sub.problem.Lp.Problem.objective.(cv) <- c;
      let rj = var_map.(cv) in
      if rj >= 0 then red.Lp.Problem.objective.(rj) <- c)
    sub.covered_cells

let bound ?(iterations = 60) ?(step_scale = 1.0) spec cls =
  (match spec.Mcperf.Spec.goal with
  | Mcperf.Spec.Qos _ -> ()
  | Mcperf.Spec.Avg_latency _ ->
    invalid_arg "Lagrangian.bound: requires a QoS goal");
  let fraction =
    match spec.Mcperf.Spec.goal with
    | Mcperf.Spec.Qos { fraction; _ } -> fraction
    | Mcperf.Spec.Avg_latency _ -> assert false
  in
  let perm = Mcperf.Permission.compute spec cls in
  let nodes = Mcperf.Spec.node_count spec in
  let objects = Mcperf.Spec.object_count spec in
  if not (Mcperf.Permission.feasible perm) then
    {
      bound = infinity;
      iterations = 0;
      lambda = Array.make nodes 0.;
      subproblems_exact = 0;
      subproblems_bounded = 0;
    }
  else begin
    let node_totals = Workload.Demand.node_read_totals spec.Mcperf.Spec.demand in
    (* Always-covered demand reduces the QoS requirements (same constants
       as the monolithic model). *)
    let always = Array.make nodes 0. in
    Array.iteri
      (fun k cells ->
        let w = spec.Mcperf.Spec.demand.Workload.Demand.weight.(k) in
        Array.iter
          (fun (c : Workload.Demand.cell) ->
            if perm.Mcperf.Permission.origin_covered.(c.node) then
              always.(c.node) <- always.(c.node) +. (c.count *. w))
          cells)
      spec.Mcperf.Spec.demand.Workload.Demand.reads;
    let t_n =
      Array.init nodes (fun n ->
          Float.max 0. ((fraction *. node_totals.(n)) -. always.(n)))
    in
    let subs = Array.init objects (fun k -> build_subproblem perm k) in
    let lambda = Array.make nodes 0. in
    let best_bound = ref 0. in
    let best_lambda = ref (Array.copy lambda) in
    let exact_count = ref 0 and bounded_count = ref 0 in
    let alpha = spec.Mcperf.Spec.costs.Mcperf.Spec.alpha in
    for t = 0 to iterations - 1 do
      let coverage = Array.make nodes 0. in
      let sub_total = ref 0. in
      Array.iter
        (fun sub ->
          set_lambda_objective sub lambda;
          sub_total :=
            !sub_total
            +. solve_sub sub ~coverage_acc:coverage ~exact_count
                 ~bounded_count)
        subs;
      let value = Util.Vecops.dot lambda t_n +. !sub_total in
      if value > !best_bound then begin
        best_bound := value;
        best_lambda := Array.copy lambda
      end;
      (* Projected subgradient step on g_n = T_n - coverage_n, normalized
         to unit infinity-norm so the multiplier scale tracks the unit
         costs rather than the (much larger) demand counts. *)
      let g = Array.init nodes (fun n -> t_n.(n) -. coverage.(n)) in
      let gmax = Util.Vecops.norm_inf g in
      if gmax > 0. then begin
        let unit_cost =
          Float.max (alpha +. spec.Mcperf.Spec.costs.Mcperf.Spec.beta) 1e-6
        in
        let step = step_scale *. unit_cost /. float_of_int (1 + t) in
        for n = 0 to nodes - 1 do
          lambda.(n) <- Float.max 0. (lambda.(n) +. (step *. g.(n) /. gmax))
        done
      end
    done;
    {
      bound = !best_bound;
      iterations;
      lambda = !best_lambda;
      subproblems_exact = !exact_count;
      subproblems_bounded = !bounded_count;
    }
  end
