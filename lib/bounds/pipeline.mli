(** The lower-bound pipeline of the paper's methodology (Sections 5–6.1).

    For a given spec and heuristic class:

    + run the {!Mcperf.Permission} feasibility oracle — if the class cannot
      reach the goal at all (e.g. caching above its cold-miss ceiling), no
      LP is solved and the class is reported infeasible;
    + build the MC-PERF LP relaxation ({!Mcperf.Model});
    + solve it — exactly with the dense simplex for small models, or with
      PDHG + the always-valid dual certificate for large ones;
    + round the fractional solution to a feasible integral placement
      ({!Rounding.Round}), whose cost bounds the lower bound's tightness
      from above.

    The designer then compares classes on [lower_bound] (Figure 1) and
    checks deployed heuristics against them (Figure 2). *)

type solver =
  | Auto
      (** dense simplex when the model is small enough, PDHG otherwise *)
  | Exact_simplex
  | First_order of Lp.Pdhg.options

type t = {
  class_name : string;
  feasible : bool;
      (** the class can meet the goal; when false all other fields are
          zero/None and [lower_bound] is [infinity] *)
  lower_bound : float;
      (** certified lower bound on any heuristic of the class (exact LP
          optimum under [Exact_simplex]) *)
  rounded : Rounding.Round.result option;
      (** feasible integral solution from the rounding algorithm *)
  gap : float option;
      (** (rounded cost - lower bound) / rounded cost, when both exist *)
  exact : bool;  (** lower bound is an exact LP optimum *)
  lp_iterations : int;  (** 0 for simplex *)
  vars : int;
  rows : int;
  max_feasible_qos : float;
      (** worst per-user achievable QoS for this class (1.0 if no QoS
          goal) *)
}

val default_pdhg_options : Lp.Pdhg.options
(** PDHG options tuned for MC-PERF instances (more iterations, looser
    relative tolerance than the library default). *)

val compute :
  ?solver:solver ->
  ?placeable:bool array ->
  Mcperf.Spec.t ->
  Mcperf.Classes.t ->
  t
(** Raises [Invalid_argument] only on malformed inputs; class infeasibility
    and solver truncation are reported in the result. [placeable]
    restricts replica-hosting nodes (Section 6.2 phase two). *)

val compare_classes :
  ?solver:solver ->
  ?placeable:bool array ->
  Mcperf.Spec.t ->
  Mcperf.Classes.t list ->
  t list
(** {!compute} for each class, in the given order. *)

val best_class : t list -> t option
(** The feasible class with the smallest lower bound (the methodology's
    recommendation when its bound is close to the general bound). *)

val pp : Format.formatter -> t -> unit

val sweep_qos :
  ?solver:solver ->
  ?placeable:bool array ->
  Mcperf.Spec.t ->
  float list ->
  Mcperf.Classes.t ->
  (float * t) list
(** Compute the class's bound at each QoS fraction (the spec's goal
    supplies the latency threshold; its fraction is replaced per point).
    Sweep the fractions in ascending order: the first-order solver warm
    starts each point from the previous solution, which typically cuts
    iteration counts by an order of magnitude. Requires a QoS-goal
    spec. *)

(** {2 Parallel class x goal-point sweeps}

    The figure sweeps evaluate every heuristic class at every QoS point —
    an embarrassingly parallel grid. {!sweep_classes} runs one task per
    (class, point) cell through {!Util.Parallel}. Cells are solved
    independently (no cross-point warm starting), so a cell's result is a
    pure function of [(spec, class, point)] and the sweep output is
    byte-identical at every [jobs] value. *)

type task_stat = {
  label : string;  (** the class's display label *)
  x : float;  (** the swept QoS fraction *)
  wall_s : float;  (** cell wall-clock inside its worker *)
  iterations : int;  (** first-order solver iterations (0 for simplex) *)
  solved_exactly : bool;
}

type sweep = {
  per_class : (string * (float * t) list) list;
      (** one series per input class, fractions in input order *)
  stats : task_stat list;  (** one entry per cell, in task order *)
  jobs : int;  (** worker count actually used *)
  elapsed_s : float;  (** whole-sweep wall-clock in the parent *)
}

val sweep_classes :
  ?jobs:int ->
  ?solver:solver ->
  ?placeable:bool array ->
  Mcperf.Spec.t ->
  fractions:float list ->
  (string * Mcperf.Classes.t) list ->
  sweep
(** [sweep_classes spec ~fractions classes] computes {!compute} for every
    (class, fraction) cell, fanned out over [jobs] worker processes
    (default 1 = sequential; {!Util.Parallel.default_jobs} is a good
    explicit choice). Requires a QoS-goal spec. *)
