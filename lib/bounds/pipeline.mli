(** The lower-bound pipeline of the paper's methodology (Sections 5–6.1).

    For a given spec and heuristic class:

    + run the {!Mcperf.Permission} feasibility oracle — if the class cannot
      reach the goal at all (e.g. caching above its cold-miss ceiling), no
      LP is solved and the class is reported infeasible;
    + build the MC-PERF LP relaxation ({!Mcperf.Model});
    + solve it — exactly with the dense simplex for small models, or with
      PDHG + the always-valid dual certificate for large ones;
    + round the fractional solution to a feasible integral placement
      ({!Rounding.Round}), whose cost bounds the lower bound's tightness
      from above.

    The designer then compares classes on [lower_bound] (Figure 1) and
    checks deployed heuristics against them (Figure 2).

    A third producer rides in front of the LP chain: when the spec is a
    tree instance within {!Tree_dp}'s proven-exact scope (and the solver
    is [Auto]), the closest-allocation DP computes the true integer
    optimum directly — the cell's [lower_bound] and [rounded] solution
    coincide, [quality] is [Exact], [solve_path] is [Path_tree_dp] and
    the gap is zero by construction. Ineligible or unverified instances
    fall through to the LP producers unchanged. *)

type solver =
  | Auto
      (** dense simplex when the model is small enough, PDHG otherwise *)
  | Exact_simplex
  | First_order of Lp.Pdhg.options

(** Which leg of the solver fallback chain produced a cell's bound. The
    PDHG leg guards its own numerical health: an outcome with non-finite
    scalars or iterates, or whose certified bound cannot be reproduced by
    re-evaluating {!Lp.Certificate.dual_bound} at the best dual iterate,
    is discarded and the cell is re-solved cold on a clean rebuild
    ([Path_pdhg_retry]); if that fails too, the exact simplex rescues the
    cell ([Path_simplex_fallback]). Because the retry runs from the same
    prepared structure and warm start as the primary attempt, a retry
    after input poisoning yields exactly the values an unfaulted solve
    produces — only this tag records that recovery happened. *)
type solve_path =
  | Path_presolve  (** presolve fixed every variable; no solver ran *)
  | Path_tree_dp
      (** {!Tree_dp} solved the cell exactly — tree topology within the
          DP's proven-exact scope; no LP was built, the bound is the true
          integer optimum and the gap is zero by construction *)
  | Path_simplex  (** primary exact simplex (small models) *)
  | Path_pdhg  (** primary PDHG solve, numerically healthy *)
  | Path_pdhg_retry  (** first PDHG attempt unhealthy; clean retry accepted *)
  | Path_simplex_fallback  (** both PDHG attempts unhealthy; simplex rescue *)
  | Path_infeasible  (** the feasibility oracle or the LP said no *)

val all_paths : solve_path list
(** Every tag, in a fixed display order. *)

val path_label : solve_path -> string

(** How tight a cell's bound is, beyond the binary [exact] flag. The key
    property of the anytime solver design is that every tag below the
    first still labels a {e valid} lower bound — weak duality holds at
    every dual iterate, so stopping early loosens the bound but never
    invalidates it. *)
type quality =
  | Exact  (** exact LP optimum (simplex or presolve) *)
  | Converged  (** PDHG met its relative-gap tolerance *)
  | Iter_budget  (** PDHG hit its iteration cap before converging *)
  | Time_budget  (** a wall-clock deadline stopped PDHG early *)

val all_qualities : quality list
(** Every tag, in a fixed display order. *)

val quality_label : quality -> string

(** Machine-checkable witness attached to a cell. [Dual y] certifies a
    feasible cell's [lower_bound]: re-evaluating the dual bound at [y] on
    the (Ge-normalized, presolve-reduced) model reproduces it. [Farkas r]
    certifies an infeasible cell: [r] passes
    {!Lp.Certificate.check_farkas} on the Ge-normalized full model
    problem, proving no placement can meet the goal. {!certify} replays
    either check from scratch. *)
type certificate =
  | Dual of float array
  | Farkas of float array

type t = {
  class_name : string;
  feasible : bool;
      (** the class can meet the goal; when false all other fields are
          zero/None and [lower_bound] is [infinity] *)
  lower_bound : float;
      (** certified lower bound on any heuristic of the class (exact LP
          optimum under [Exact_simplex]) *)
  rounded : Rounding.Round.result option;
      (** feasible integral solution from the rounding algorithm *)
  gap : float option;
      (** (rounded cost - lower bound) / rounded cost, when both exist *)
  exact : bool;  (** lower bound is an exact LP optimum *)
  lp_iterations : int;  (** 0 for simplex *)
  vars : int;
  rows : int;
  max_feasible_qos : float;
      (** worst per-user achievable QoS for this class (1.0 if no QoS
          goal) *)
  solve_path : solve_path;
      (** which fallback-chain leg produced the bound; never affects the
          numbers, only records how they were obtained *)
  quality : quality;
      (** how the solve stopped; anything below [Exact]/[Converged] means
          the bound is valid but possibly loose *)
  rel_gap : float;
      (** solver's relative primal-dual gap estimate at stop (0 for exact
          solves, [infinity] when no finite bound was certified) *)
  certificate : certificate option;
      (** independent witness for the bound or the infeasibility; [None]
          only when no verifiable witness could be derived — except
          [Path_tree_dp] cells, whose witness is the deterministic DP
          itself (replayed by {!certify}) *)
}

val default_pdhg_options : Lp.Pdhg.options
(** PDHG options tuned for MC-PERF instances (more iterations, looser
    relative tolerance than the library default). *)

val compute :
  ?solver:solver ->
  ?placeable:bool array ->
  Mcperf.Spec.t ->
  Mcperf.Classes.t ->
  t
(** Raises [Invalid_argument] only on malformed inputs; class infeasibility
    and solver truncation are reported in the result. [placeable]
    restricts replica-hosting nodes (Section 6.2 phase two). *)

val compare_classes :
  ?solver:solver ->
  ?placeable:bool array ->
  Mcperf.Spec.t ->
  Mcperf.Classes.t list ->
  t list
(** {!compute} for each class, in the given order. *)

(** Warm-started class-bound re-solves for the online engine.

    An epoch loop solves the same (class, goal) bound on a demand that
    grows by a few intervals each epoch. The models differ in dimension,
    so prepared images and iterates cannot be reused by index; a handle
    instead keeps, per class, the last solve's variable identities
    ({!Mcperf.Model.kinds}) and solution point, and lifts them onto the
    next epoch's model by matching (node, interval, object) variable
    kinds — carried-over variables start at their previous values, new
    ones start cold, and the projection into the presolved space goes
    through the presolve variable map. The dual always starts cold, and
    a PDHG bound is certified at {e any} dual iterate, so warm starts
    affect speed only, never validity. Exact (simplex / tree-DP) legs
    ignore the warm start and stay bit-identical to {!compute}. *)
module Online : sig
  type handle

  val create :
    ?solver:solver -> ?placeable:bool array -> ?warm:bool -> unit -> handle
  (** [warm:false] disables state carry-over (every solve is cold —
      the baseline the bench compares against). *)

  val solve : handle -> Mcperf.Spec.t -> Mcperf.Classes.t -> t
  (** {!compute} with per-class warm continuation across calls. *)

  val solves : handle -> int

  val warm_lifts : handle -> int
  (** Solves that started from a lifted previous point. *)

  val lifted_vars : handle -> int
  (** Total variables carried over across all lifts. *)
end

val best_class : t list -> t option
(** The feasible class with the smallest lower bound (the methodology's
    recommendation when its bound is close to the general bound). *)

val pp : Format.formatter -> t -> unit

val certify :
  ?placeable:bool array ->
  Mcperf.Spec.t ->
  Mcperf.Classes.t ->
  t ->
  (unit, string) result
(** Recheck a cell's certificate from scratch: rebuild the model from
    [(spec, class)] (the spec must carry the goal the cell was computed
    at, including its QoS fraction), replay the deterministic presolve,
    and re-evaluate the certificate arithmetic — no solver runs. [Ok ()]
    when a [Dual] witness reproduces [lower_bound] (tolerance
    [1e-6 * (1 + |bound|)]) or a [Farkas] witness passes
    {!Lp.Certificate.check_farkas}; [Error msg] otherwise, including when
    no certificate is attached. [Path_tree_dp] cells are the exception to
    the no-certificate failure: their witness is the DP itself, so
    {!certify} replays {!Tree_dp.of_spec} + {!Tree_dp.solve} and checks
    that the re-evaluated optimum reproduces the recorded bound. *)

val sweep_qos :
  ?solver:solver ->
  ?placeable:bool array ->
  Mcperf.Spec.t ->
  float list ->
  Mcperf.Classes.t ->
  (float * t) list
(** Compute the class's bound at each QoS fraction (the spec's goal
    supplies the latency threshold; its fraction is replaced per point).
    Sweep the fractions in ascending order: the first-order solver warm
    starts each point from the previous solution, which typically cuts
    iteration counts by an order of magnitude. Requires a QoS-goal
    spec. *)

(** {2 Parallel class x goal-point sweeps}

    The figure sweeps evaluate every heuristic class at every QoS point —
    an embarrassingly parallel grid. {!sweep_classes} runs one task per
    (class, point) cell through {!Util.Parallel}. Cells are solved
    independently (no cross-point warm starting), so a cell's result is a
    pure function of [(spec, class, point)] and the sweep output is
    byte-identical at every [jobs] value. *)

type task_stat = {
  label : string;  (** the class's display label *)
  x : float;  (** the swept QoS fraction *)
  wall_s : float;  (** cell wall-clock inside its worker *)
  iterations : int;  (** first-order solver iterations (0 for simplex) *)
  solved_exactly : bool;
  cell_path : solve_path;  (** which fallback-chain leg produced the cell *)
  cell_quality : quality;  (** the cell result's [quality] tag *)
  cell_rel_gap : float;  (** the cell result's [rel_gap] *)
}

type sweep = {
  per_class : (string * (float * t) list) list;
      (** one series per input class, fractions in input order *)
  stats : task_stat list;  (** one entry per cell, in task order *)
  jobs : int;  (** worker count actually used *)
  elapsed_s : float;  (** whole-sweep wall-clock in the parent *)
  pool : Util.Parallel.pool_stats;
      (** supervision counters from the worker pool (all-zero when no
          recovery was needed) *)
  resumed : int;  (** cells restored from the checkpoint journal *)
}

val path_counts : sweep -> (solve_path * int) list
(** How many cells each fallback-chain leg handled, over {!all_paths}
    (zero entries included). *)

val quality_counts : sweep -> (quality * int) list
(** How many cells stopped with each quality tag, over {!all_qualities}
    (zero entries included). A budget-free sweep reports every cell
    [Exact] or [Converged]. *)

(** Sweep configuration as one value; build from {!Sweep_config.default}
    with the [with_*] builders:

    {[
      Pipeline.(
        sweep_classes
          Sweep_config.(default |> with_jobs 4 |> with_deadline 30.)
          spec ~fractions classes)
    ]} *)
module Sweep_config : sig
  type t = {
    jobs : int;  (** worker processes; <= 1 means sequential *)
    solver : solver;
    placeable : bool array option;
        (** replica-hosting node restriction (Section 6.2 phase two) *)
    timeout_s : float option;
        (** per-cell hard deadline enforced by killing the worker *)
    deadline_s : float;  (** whole-sweep wall-clock budget; [infinity] = none *)
    cell_budget_s : float;  (** per-cell budget cap; [infinity] = none *)
    journal : string option;  (** checkpoint journal path *)
    progress : (completed:int -> total:int -> unit) option;
    obs : Obs.Config.t option;
        (** observability view to install for the sweep (and inherit into
            its workers); [None] keeps the ambient {!Obs.Config} *)
    workers : (string * int) list;
        (** remote TCP worker addresses ([host, port]); each becomes one
            extra pool slot fed through {!Dist.Client} alongside the
            [jobs] local fork workers ([jobs <= 1] with a non-empty list
            means {e no} local workers — coordinator plus remotes only).
            Pair with [timeout_s]: a dropped dispatch frame is only
            reclaimed by the per-task timeout. [[]] = local-only. *)
  }

  val default : t
  (** Sequential, [Auto] solver, unbudgeted, no journal, ambient
      observability — the old defaults, as one value. *)

  val with_jobs : int -> t -> t
  val with_solver : solver -> t -> t
  val with_placeable : bool array -> t -> t
  val with_timeout : float -> t -> t
  val with_deadline : float -> t -> t
  val with_cell_budget : float -> t -> t
  val with_journal : string -> t -> t
  val with_progress : (completed:int -> total:int -> unit) -> t -> t
  val with_obs : Obs.Config.t -> t -> t
  val with_workers : (string * int) list -> t -> t
end

val dist_fn : string
(** ["pipeline.sweep-cell"] — the {!Dist.Registry} name under which this
    module registers its cell solver at module-init time. A worker
    process serving this function must link this module (coordinator and
    workers are the same binary, so they always do). *)

val load_journal_result :
  fingerprint:string ->
  string ->
  ((string * (t * float)) list, Util.Parse_error.t) result
(** Strict checkpoint-journal loader: parse the journal at the path and
    return its completed cells in file order, or a structured error
    naming the first defect — missing file, missing header ([line 1]),
    fingerprint mismatch ([line 1]), or a corrupt record (its 1-based
    line). The sweep itself uses the tolerant salvage semantics instead
    (ignore a mismatched journal, keep the valid prefix of a torn one);
    this is the result-first API for tools that must distinguish "no
    journal" from "journal damaged". *)

val sweep_classes :
  Sweep_config.t ->
  Mcperf.Spec.t ->
  fractions:float list ->
  (string * Mcperf.Classes.t) list ->
  sweep
(** [sweep_classes cfg spec ~fractions classes] computes {!compute} for
    every (class, fraction) cell, fanned out over [cfg.jobs] worker
    processes ({!Util.Parallel.default_jobs} is a good explicit choice).
    Requires a QoS-goal spec. The field names below refer to
    {!Sweep_config.t}.

    [timeout_s] is the per-cell deadline handed to the worker pool (a
    stalled cell's worker is killed and the cell retried).

    [deadline_s] is a wall-clock budget for the {e whole} sweep: a
    governor apportions what remains of it across the cells still
    outstanding (re-evaluated at every dispatch, so fast cells donate
    their slack) and each cell's share caps its first-order solver's
    deadline. Cells that run out of time stop at a checkpoint and keep
    their best certified-so-far bound — the sweep degrades to looser but
    still valid bounds, recorded per cell in [quality]/[rel_gap], instead
    of overrunning. The sweep finishes within roughly [deadline_s] plus
    one cell's checkpoint granularity. [cell_budget_s] caps any single
    cell's share independently of the global deadline. Omitting both
    (or passing non-positive/infinite values) reads no clocks in any
    solver and leaves the output byte-identical to previous releases at
    every [jobs] value; budgets also fold into the journal fingerprint,
    so degraded cells are never resumed into a differently-budgeted
    sweep.

    [journal] names a checkpoint file: every completed cell is appended
    (atomic tmp+rename rewrite) so an interrupted sweep re-run with the
    same arguments skips the recorded cells and — because each cell's
    result is a pure function of (spec, class, fraction) — produces
    output byte-identical to an uninterrupted run at any [jobs]. The
    journal carries a fingerprint of the sweep's identity (a journal from
    a different sweep is ignored), tolerates a torn tail from a crash
    mid-write, and is deleted when the sweep completes.

    [progress] is invoked in the parent after each cell completes.

    When a {!Util.Faults} spec is installed, each cell passes through the
    crash/stall injection points (worker first attempts only) and cells
    selected by [diverge] get their first PDHG attempt poisoned with a
    NaN rhs — exercising, deterministically, the supervision and fallback
    machinery without changing any reported number. *)
