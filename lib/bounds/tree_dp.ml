(* Exact tree placement via leaf-up Pareto dynamic programs.

   Everything here is per object: with a single interval and no
   cross-object cost terms, MC-PERF on a tree decouples into independent
   minimum-cardinality covering problems, one per object, each solved by a
   postorder sweep that carries a small Pareto frontier of partial
   solutions. DESIGN.md §12 develops the recurrences and the dominance
   arguments; the brute-force oracle in test/test_tree_dp.ml checks both
   disciplines exhaustively on every tree shape up to 12 nodes. *)

type service = Any_replica | Closest_ancestor of { capacity : float }

type instance = {
  nodes : int;
  root : int;
  parent : int array;
  up_ms : float array;
  children : int list array;
  permitted : bool array;
  demand : float array array;
  budget_ms : float array;
  replica_cost : float array;
  service : service;
}

let check_finite name a =
  Array.iter
    (fun x ->
      if not (Float.is_finite x) || x < 0. then
        invalid_arg (Printf.sprintf "Tree_dp.make: %s must be finite and >= 0" name))
    a

let make ~parent ~up_ms ?permitted ~demand ~budget_ms ~replica_cost
    ?(service = Any_replica) () =
  let nodes = Array.length parent in
  if nodes = 0 then invalid_arg "Tree_dp.make: empty tree";
  if Array.length up_ms <> nodes || Array.length budget_ms <> nodes then
    invalid_arg "Tree_dp.make: up_ms/budget_ms length must equal node count";
  let root =
    match
      Array.to_list (Array.mapi (fun v p -> (v, p)) parent)
      |> List.filter (fun (_, p) -> p < 0)
    with
    | [ (r, _) ] -> r
    | _ -> invalid_arg "Tree_dp.make: exactly one node must have parent -1"
  in
  let children = Array.make nodes [] in
  for v = nodes - 1 downto 0 do
    if v <> root then begin
      let p = parent.(v) in
      if p < 0 || p >= nodes || p = v then
        invalid_arg "Tree_dp.make: parent id out of range";
      children.(p) <- v :: children.(p)
    end
  done;
  (* Reachability from the root doubles as the acyclicity check. *)
  let seen = ref 1 in
  let visited = Array.make nodes false in
  visited.(root) <- true;
  let rec visit v =
    List.iter
      (fun c ->
        if not visited.(c) then begin
          visited.(c) <- true;
          incr seen;
          visit c
        end)
      children.(v)
  in
  visit root;
  if !seen <> nodes then invalid_arg "Tree_dp.make: parent array has a cycle";
  check_finite "up_ms" up_ms;
  check_finite "budget_ms" budget_ms;
  check_finite "replica_cost" replica_cost;
  Array.iter (fun row ->
      if Array.length row <> nodes then
        invalid_arg "Tree_dp.make: demand rows must have one entry per node";
      check_finite "demand" row)
    demand;
  if Array.length replica_cost <> Array.length demand then
    invalid_arg "Tree_dp.make: one replica_cost per object";
  (match service with
  | Any_replica -> ()
  | Closest_ancestor { capacity } ->
    if not (Float.is_finite capacity) || capacity < 0. then
      invalid_arg "Tree_dp.make: capacity must be finite and >= 0");
  let permitted =
    match permitted with
    | None -> Array.init nodes (fun v -> v <> root)
    | Some p ->
      if Array.length p <> nodes then
        invalid_arg "Tree_dp.make: permitted length must equal node count";
      Array.init nodes (fun v -> p.(v) && v <> root)
  in
  {
    nodes;
    root;
    parent = Array.copy parent;
    up_ms = Array.copy up_ms;
    children;
    permitted;
    demand = Array.map Array.copy demand;
    budget_ms = Array.copy budget_ms;
    replica_cost = Array.copy replica_cost;
    service;
  }

type solution = { cost : float; placement : int list array }

type outcome = Optimal of solution | Unsatisfiable of { object_id : int }

let postorder inst =
  let order = Array.make inst.nodes inst.root in
  let idx = ref 0 in
  let rec go v =
    List.iter go inst.children.(v);
    order.(!idx) <- v;
    incr idx
  in
  go inst.root;
  order

(* Pareto pruning, shared shape for both disciplines: sort by a canonical
   key (replica count, then the two frontier coordinates), keep a state
   only if nothing kept before it weakly dominates it. List.sort is
   stable, so identical keys keep their construction order and the whole
   sweep is deterministic — byte-identical placements at every --jobs. *)
let pareto ~key ~dominates states =
  let sorted = List.sort (fun x y -> compare (key x) (key y)) states in
  let kept = ref [] in
  List.iter
    (fun st ->
      if not (List.exists (fun k -> dominates k st) !kept) then
        kept := st :: !kept)
    sorted;
  List.rev !kept

(* --- any-replica discipline --------------------------------------------

   State of a subtree rooted at v, seen from v:
     [n]      replicas placed in the subtree;
     [a]      distance from v to the nearest replica below (inf if none);
     [s]      worst remaining slack among the subtree's uncovered demands:
              min over them of (their budget - their distance to v), inf
              if everything below is already covered. A replica placed at
              distance d above v covers them all iff d <= s, so the
              minimum is the only number the future needs — the invariant
              s >= 0 (negative-slack states are pruned as dead) is the
              closest-allocation invariant of DESIGN.md §12. *)

type astate = { an : int; a : float; s : float; a_placed : int list }

let aprune =
  pareto
    ~key:(fun st -> (st.an, st.a, -.st.s))
    ~dominates:(fun k st -> k.an <= st.an && k.a <= st.a && k.s >= st.s)

let solve_object_any inst order k =
  let states = Array.make inst.nodes [] in
  Array.iter
    (fun v ->
      let acc =
        ref [ { an = 0; a = Float.infinity; s = Float.infinity; a_placed = [] } ]
      in
      List.iter
        (fun c ->
          let e = inst.up_ms.(c) in
          let shifted =
            List.filter_map
              (fun st ->
                let s = if st.s = Float.infinity then st.s else st.s -. e in
                if s < 0. then None (* uncovered demand out of reach: dead *)
                else
                  Some
                    {
                      st with
                      a = (if st.a = Float.infinity then st.a else st.a +. e);
                      s;
                    })
              states.(c)
          in
          states.(c) <- [];
          acc :=
            aprune
              (List.concat_map
                 (fun x ->
                   List.map
                     (fun y ->
                       (* Cross-coverage at the merge point: one side's
                          uncovered demands are all covered by the other
                          side's nearest replica iff that replica is
                          within the side's worst slack. *)
                       let sx = if y.a <= x.s then Float.infinity else x.s in
                       let sy = if x.a <= y.s then Float.infinity else y.s in
                       {
                         an = x.an + y.an;
                         a = Float.min x.a y.a;
                         s = Float.min sx sy;
                         a_placed = x.a_placed @ y.a_placed;
                       })
                     shifted)
                 !acc))
        inst.children.(v);
      if inst.demand.(k).(v) > 0. then
        acc :=
          List.filter_map
            (fun st ->
              if st.a <= inst.budget_ms.(v) then Some st
              else
                let s = Float.min st.s inst.budget_ms.(v) in
                if s < 0. then None else Some { st with s })
            !acc;
      if inst.permitted.(v) then
        acc :=
          aprune
            (!acc
            @ List.map
                (fun st ->
                  (* Placing at v covers every uncovered demand below: all
                     carry slack >= s >= 0 and the new replica is at
                     distance 0. *)
                  {
                    an = st.an + 1;
                    a = 0.;
                    s = Float.infinity;
                    a_placed = v :: st.a_placed;
                  })
                !acc);
      states.(v) <- !acc)
    order;
  (* Nothing sits above the root, so demand still uncovered there is
     unservable (origin-covered demand was cleared before the DP ran). *)
  match List.filter (fun st -> st.s = Float.infinity) states.(inst.root) with
  | [] -> None
  | st :: rest ->
    let best = List.fold_left (fun b st -> if st.an < b.an then st else b) st rest in
    Some (best.an, List.sort compare best.a_placed)

(* --- closest-ancestor (bandwidth) discipline ----------------------------

   Requests flow towards the root and are served by the first replica on
   the way (the Closest policy), each replica serving at most [capacity]
   units; the root serves the residue uncapped. State of a subtree at v:
     [n]  replicas placed below;
     [u]  unserved flow passing up through v;
     [s]  tightest remaining distance budget among that flow (inf when
          u = 0) — serving it anywhere at or above v needs s >= 0. *)

type cstate = { cn : int; u : float; cs : float; c_placed : int list }

let cprune =
  pareto
    ~key:(fun st -> (st.cn, st.u, -.st.cs))
    ~dominates:(fun k st -> k.cn <= st.cn && k.u <= st.u && k.cs >= st.cs)

let solve_object_closest inst ~capacity order k =
  let states = Array.make inst.nodes [] in
  Array.iter
    (fun v ->
      let acc = ref [ { cn = 0; u = 0.; cs = Float.infinity; c_placed = [] } ] in
      List.iter
        (fun c ->
          let e = inst.up_ms.(c) in
          let shifted =
            List.filter_map
              (fun st ->
                let cs = if st.cs = Float.infinity then st.cs else st.cs -. e in
                if st.u > 0. && cs < 0. then None else Some { st with cs })
              states.(c)
          in
          states.(c) <- [];
          acc :=
            cprune
              (List.concat_map
                 (fun x ->
                   List.map
                     (fun y ->
                       {
                         cn = x.cn + y.cn;
                         u = x.u +. y.u;
                         cs = Float.min x.cs y.cs;
                         c_placed = x.c_placed @ y.c_placed;
                       })
                     shifted)
                 !acc))
        inst.children.(v);
      let d = inst.demand.(k).(v) in
      if d > 0. then
        acc :=
          List.map
            (fun st ->
              { st with u = st.u +. d; cs = Float.min st.cs inst.budget_ms.(v) })
            !acc;
      if inst.permitted.(v) then
        acc :=
          cprune
            (!acc
            @ List.filter_map
                (fun st ->
                  (* Closest forces a replica at v to serve all passing
                     flow, so placing is only an option when it fits. *)
                  if st.u <= capacity then
                    Some
                      {
                        cn = st.cn + 1;
                        u = 0.;
                        cs = Float.infinity;
                        c_placed = v :: st.c_placed;
                      }
                  else None)
                !acc);
      states.(v) <- !acc)
    order;
  (* The root serves whatever still flows, uncapped; the per-shift slack
     filter already killed states whose flow overran its budget. *)
  match states.(inst.root) with
  | [] -> None
  | st :: rest ->
    let best = List.fold_left (fun b st -> if st.cn < b.cn then st else b) st rest in
    Some (best.cn, List.sort compare best.c_placed)

let solve inst =
  let order = postorder inst in
  let objects = Array.length inst.demand in
  let solve_object =
    match inst.service with
    | Any_replica -> solve_object_any inst order
    | Closest_ancestor { capacity } -> solve_object_closest inst ~capacity order
  in
  let placement = Array.make objects [] in
  let rec go k cost =
    if k = objects then Optimal { cost; placement }
    else
      match solve_object k with
      | None -> Unsatisfiable { object_id = k }
      | Some (count, sites) ->
        placement.(k) <- sites;
        go (k + 1) (cost +. (float_of_int count *. inst.replica_cost.(k)))
  in
  go 0 0.

(* --- MC-PERF mapping ----------------------------------------------------- *)

let structurally_general (cls : Mcperf.Classes.t) =
  cls.Mcperf.Classes.storage = Mcperf.Classes.Sc_none
  && cls.Mcperf.Classes.replicas = Mcperf.Classes.Rc_none
  && cls.Mcperf.Classes.routing = Topology.System.Route_global
  && cls.Mcperf.Classes.knowledge = Topology.System.Know_global
  && cls.Mcperf.Classes.history = Mcperf.Classes.All_intervals
  && cls.Mcperf.Classes.timing = Mcperf.Classes.Proactive

(* Strict margin on the atomicity condition: a demanding pair sitting
   exactly at the uncoverable share could legally be dropped by an
   integral solution, which would break the full-coverage equivalence the
   DP's exactness rests on. Near-ties go to the LP producers instead. *)
let atomicity_margin = 1e-9

let of_spec ?placeable (spec : Mcperf.Spec.t) (cls : Mcperf.Classes.t) =
  match spec.Mcperf.Spec.goal with
  | Mcperf.Spec.Avg_latency _ -> Error "tree-dp: requires a QoS goal"
  | Mcperf.Spec.Qos { tlat_ms; fraction } ->
    if Mcperf.Spec.interval_count spec <> 1 then
      Error "tree-dp: requires a single evaluation interval"
    else if not (structurally_general cls) then
      Error "tree-dp: exact only for the unconstrained (general) class"
    else begin
      let costs = spec.Mcperf.Spec.costs in
      if
        costs.Mcperf.Spec.gamma <> 0.
        || costs.Mcperf.Spec.delta <> 0.
        || costs.Mcperf.Spec.zeta <> 0.
      then Error "tree-dp: gamma/delta/zeta cost terms are out of scope"
      else begin
        let sys = spec.Mcperf.Spec.system in
        let g = sys.Topology.System.graph in
        if not (Topology.Graph.is_tree g) then
          Error "tree-dp: topology is not a tree"
        else begin
          let nodes = Mcperf.Spec.node_count spec in
          let objects = Mcperf.Spec.object_count spec in
          let origin = sys.Topology.System.origin in
          (* Root the tree at the origin. *)
          let parent = Array.make nodes (-1) in
          let up_ms = Array.make nodes 0. in
          let seen = Array.make nodes false in
          seen.(origin) <- true;
          let q = Queue.create () in
          Queue.add origin q;
          while not (Queue.is_empty q) do
            let u = Queue.pop q in
            List.iter
              (fun (v, w) ->
                if not seen.(v) then begin
                  seen.(v) <- true;
                  parent.(v) <- u;
                  up_ms.(v) <- w;
                  Queue.add v q
                end)
              (Topology.Graph.neighbors g u)
          done;
          (* Weighted per-(object, node) demand at the single interval. *)
          let demand = Array.make_matrix objects nodes 0. in
          let weight = spec.Mcperf.Spec.demand.Workload.Demand.weight in
          Array.iteri
            (fun k cells ->
              Array.iter
                (fun (c : Workload.Demand.cell) ->
                  demand.(k).(c.node) <-
                    demand.(k).(c.node) +. (weight.(k) *. c.count))
                cells)
            spec.Mcperf.Spec.demand.Workload.Demand.reads;
          let totals = Workload.Demand.node_read_totals spec.Mcperf.Spec.demand in
          (* Origin coverage uses the same latency matrix as Permission
             and Costing, so the cleared set matches always_covered
             exactly. *)
          let origin_covered v =
            sys.Topology.System.latency.(v).(origin) <= tlat_ms
          in
          let violation = ref None in
          for v = 0 to nodes - 1 do
            if origin_covered v then
              for k = 0 to objects - 1 do
                demand.(k).(v) <- 0.
              done
            else begin
              let slack = (1. -. fraction) *. totals.(v) in
              for k = 0 to objects - 1 do
                if
                  demand.(k).(v) > 0.
                  && demand.(k).(v) <= slack *. (1. +. atomicity_margin)
                  && !violation = None
                then violation := Some (v, k)
              done
            end
          done;
          match !violation with
          | Some (v, k) ->
            Error
              (Printf.sprintf
                 "tree-dp: atomicity margin violated at node %d, object %d \
                  (a feasible solution may leave the pair uncovered)"
                 v k)
          | None ->
            let permitted =
              match placeable with
              | None -> Array.init nodes (fun v -> v <> origin)
              | Some p ->
                if Array.length p <> nodes then
                  invalid_arg
                    "Tree_dp.of_spec: placeable length must equal node count";
                Array.init nodes (fun v -> p.(v) && v <> origin)
            in
            let replica_cost =
              Array.init objects (fun k ->
                  weight.(k) *. (costs.Mcperf.Spec.alpha +. costs.Mcperf.Spec.beta))
            in
            Ok
              (make ~parent ~up_ms ~permitted ~demand
                 ~budget_ms:(Array.make nodes tlat_ms)
                 ~replica_cost ())
        end
      end
    end

let placement_of inst sites =
  let objects = Array.length inst.demand in
  if Array.length sites <> objects then
    invalid_arg "Tree_dp.placement_of: one site list per object";
  let p = Array.make_matrix inst.nodes objects 0 in
  Array.iteri
    (fun k vs ->
      List.iter
        (fun v ->
          if v < 0 || v >= inst.nodes then
            invalid_arg "Tree_dp.placement_of: site out of range";
          p.(v).(k) <- 1)
        vs)
    sites;
  p
