type t = { name : string; members : int array }

let pp ppf g =
  Format.fprintf ppf "%s{%s}" g.name
    (String.concat ","
       (Array.to_list (Array.map string_of_int g.members)))

(* BFS tree from the origin with neighbours visited in ascending node id,
   so the parent/children structure — and hence every subtree group — is
   a pure function of the graph. *)
let bfs_children graph ~origin =
  let nodes = Topology.Graph.node_count graph in
  let parent = Array.make nodes (-1) in
  let seen = Array.make nodes false in
  let children = Array.make nodes [] in
  seen.(origin) <- true;
  let queue = Queue.create () in
  Queue.add origin queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let next =
      List.sort compare (List.map fst (Topology.Graph.neighbors graph v))
    in
    List.iter
      (fun u ->
        if not seen.(u) then begin
          seen.(u) <- true;
          parent.(u) <- v;
          children.(v) <- u :: children.(v);
          Queue.add u queue
        end)
      next
  done;
  Array.iteri (fun v cs -> children.(v) <- List.rev cs) children;
  children

let descendants children v =
  let acc = ref [] in
  let rec walk u =
    acc := u :: !acc;
    List.iter walk children.(u)
  in
  walk v;
  List.sort compare !acc

let derive (sys : Topology.System.t) =
  let graph = sys.Topology.System.graph in
  let origin = sys.Topology.System.origin in
  let nodes = Topology.Graph.node_count graph in
  let children = bfs_children graph ~origin in
  let seen_sets = Hashtbl.create 16 in
  let out = ref [] in
  let add name members =
    let members = Array.of_list members in
    if Array.length members >= 2 then begin
      let key =
        String.concat "," (Array.to_list (Array.map string_of_int members))
      in
      if not (Hashtbl.mem seen_sets key) then begin
        Hashtbl.add seen_sets key ();
        out := { name; members } :: !out
      end
    end
  in
  (* Subtree groups: every internal non-origin node of the BFS tree. *)
  for v = 0 to nodes - 1 do
    if v <> origin && children.(v) <> [] then
      add (Printf.sprintf "subtree-%d" v) (descendants children v)
  done;
  (* Star groups: a hub plus its degree-1 neighbours. *)
  for h = 0 to nodes - 1 do
    if h <> origin then begin
      let leaves =
        List.filter_map
          (fun (u, _) ->
            if u <> origin && Topology.Graph.degree graph u = 1 then Some u
            else None)
          (Topology.Graph.neighbors graph h)
      in
      if leaves <> [] then add (Printf.sprintf "star-%d" h) (List.sort compare (h :: leaves))
    end
  done;
  Array.of_list (List.rev !out)
