(** Correlated-failure groups derived from topology structure.

    Wide-area failures are rarely independent: a rack loses power, a
    region loses its uplink, an access tree loses its root. The
    availability model therefore samples {e group} failures — sets of
    nodes that go down together — and the groups come from the system's
    own structure, not from user configuration:

    - {b subtree} groups: the BFS tree rooted at the origin assigns every
      node a parent; each internal non-origin node together with all its
      descendants forms a group (losing a distribution node strands the
      whole subtree behind it). Depth-1 subtrees double as the "region"
      partition of the network.
    - {b star} groups: a hub together with its degree-1 neighbours (the
      leaf nodes that have no other link) — the rack/access-switch
      failure mode motivating group-structured placement models.

    Groups never contain the origin (its loss is modelled separately by
    the scenario sampler's per-node rates), are deduplicated by member
    set, and are listed in a deterministic order — the derivation is a
    pure function of the graph, so every process agrees on group names
    and membership. *)

type t = {
  name : string;  (** stable identifier, e.g. ["subtree-4"], ["star-2"] *)
  members : int array;  (** node ids, sorted ascending, never the origin *)
}

val derive : Topology.System.t -> t array
(** All failure groups of the system, deterministic in the graph. Each
    group has at least two members; singleton failures are covered by the
    sampler's independent per-node rates. May be empty (e.g. a 2-node
    system). *)

val pp : Format.formatter -> t -> unit
