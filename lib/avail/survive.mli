(** Survivability: re-price a placement under a failure scenario.

    {!degrade} replays {!Mcperf.Costing}'s closest-replica routing with a
    down-mask over the nodes: replicas on failed nodes cannot serve,
    reads from failed client sites are unavailable, and the origin
    fallback disappears when the origin itself is down — any read with no
    surviving server in reach becomes {e unavailability mass}. The
    degraded cost keeps the placement's sunk cost (storage, creation,
    class padding, writes, node opening — failures do not refund capacity
    you provisioned) and adds the degraded service terms:

    - served-late reads pay the spec's latency penalty
      [gamma * (latency - tlat)], exactly as in nominal costing;
    - unavailable reads pay {!miss_penalty} each — a price at least as
      high as the worst possible late service, so growing the failure
      set can never make a placement cheaper (the monotonicity the
      QCheck property pins down).

    {!assess} aggregates over a sampled scenario set into the fragility
    metric: the expected degraded-cost blow-up over the nominal cost. *)

type degraded = {
  down_count : int;  (** failed nodes in the scenario *)
  served : float;  (** weighted reads served within the threshold *)
  late : float;  (** weighted reads served above the threshold *)
  unavailable : float;  (** weighted reads with no surviving server *)
  lateness_ms : float;  (** weighted ms above threshold over late reads *)
  violation : float;
      (** fraction of total weighted demand not served within the
          threshold (late + unavailable); 0 when there is no demand *)
  unavail_fraction : float;  (** unavailable / total weighted demand *)
  degraded_cost : float;  (** sunk cost + penalties, see above *)
  cost_ratio : float;  (** degraded cost relative to the nominal total *)
}

val miss_penalty : Mcperf.Spec.t -> float
(** Per weighted read price of an unavailable read:
    [max 1 (gamma * (max latency - tlat))] — never below the cost of the
    worst late service, and strictly positive even when the spec's
    latency penalty is zero. *)

val degrade :
  ?base:Mcperf.Costing.evaluation ->
  Mcperf.Permission.t ->
  Mcperf.Costing.placement ->
  down:bool array ->
  degraded
(** [degrade perm placement ~down] re-prices [placement] with the failed
    nodes masked out. [base] is the nominal evaluation (computed via
    {!Mcperf.Costing.evaluate} when omitted; pass it when assessing many
    scenarios of one placement). With an all-up mask the degraded cost
    equals the nominal total. *)

type assessment = {
  scenarios : int;
  base_cost : float;  (** nominal evaluation total *)
  expected_cost : float;  (** mean degraded cost over the scenario set *)
  mean_violation : float;
  worst_violation : float;
  mean_unavailable : float;  (** mean unavailable fraction *)
  worst_cost_ratio : float;
  fragility : float;
      (** expected degraded-cost blow-up: [expected_cost / base_cost - 1]
          (for a zero-cost placement, the expected cost itself); 0 means
          failures never hurt this placement *)
}

val assess :
  ?jobs:int ->
  Mcperf.Permission.t ->
  Mcperf.Costing.placement ->
  scenarios:Scenario.t array ->
  assessment
(** Aggregate {!degrade} over a scenario set (uniform weights). [jobs]
    > 1 evaluates scenarios via {!Util.Parallel}; each scenario's
    degradation is a pure function of (permission, placement, scenario),
    so the assessment is identical at every [jobs] value. Requires a
    non-empty scenario array. *)
