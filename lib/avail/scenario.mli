(** Seeded, deterministic correlated-failure scenarios.

    A scenario is a set of simultaneously-down nodes, sampled from the
    system's failure groups ({!Groups}) plus independent per-node rates.
    Every decision is an FNV-keyed coin flip in the {!Util.Faults}
    discipline: a pure function of (seed, kind, key), never of
    scheduling, worker identity or [--jobs] — so a scenario set is
    byte-identical in every process and at every parallelism level, and
    a seed reproduces it exactly.

    Two sampling products:

    - {!sample_all}: [count] independent snapshot scenarios, for
      expectation-style survivability assessment and the scenario LP;
    - {!timeline}: a step-indexed outage schedule with repair intervals
      (an outage that starts at step [t] lasts a hash-derived number of
      steps), for the degradation-replay mode of [Sim.Runner]. *)

type spec = {
  seed : int;
  count : int;  (** scenarios drawn by {!sample_all} *)
  group_prob : float;  (** per-scenario probability that a group is down *)
  node_prob : float;  (** independent per-node failure probability *)
  origin_fails : bool;
      (** when false the origin is always up and unavailability can only
          come from client-site loss; when true the origin participates
          in the per-node rate and its loss turns uncovered demand into
          unavailability mass *)
  steps : int;  (** timeline length for {!timeline} *)
  repair_steps : int;  (** maximum outage duration, in steps (>= 1) *)
}

val default : spec
(** [seed 7], 32 scenarios, group probability 0.08, node probability
    0.02, origin failable, 48 steps, repairs within 4 steps. *)

val validate : spec -> unit
(** Raises [Invalid_argument] on non-probabilities or non-positive
    counts/steps. *)

type t = {
  index : int;  (** scenario number within its spec, [0 <= index] *)
  down : bool array;  (** per-node failure flags *)
}

val down_count : t -> int
val is_down : t -> int -> bool

val signature : t -> string
(** Compact hex rendering of the down set (node-id bitmask, low node
    first), stable across processes — used by validate output and golden
    tests. *)

val sample : spec -> Topology.System.t -> groups:Groups.t array -> int -> t
(** The scenario with the given index: group coins keyed
    ["<group>#<index>"], node coins keyed ["n<node>#<index>"]. Pure in
    (spec, system, groups, index). *)

val sample_all : spec -> Topology.System.t -> groups:Groups.t array -> t array
(** Scenarios [0 .. count-1]. Scenarios are weighted uniformly
    ([1/count]) by every consumer. *)

type timeline = {
  steps : int;
  down : bool array array;  (** [down.(t).(n)]: node [n] is down at step [t] *)
}

val timeline : spec -> Topology.System.t -> groups:Groups.t array -> timeline
(** Outage schedule over [spec.steps] steps: at each step each group
    (and each node) may begin an outage with its spec probability; the
    outage persists for [1 + hash mod repair_steps] steps (the repair
    interval), overlapping outages union. Deterministic in (spec,
    system, groups). *)

val render_timeline : timeline -> string
(** One line per step, ["step NN: down=[i,j,...]"] (or [-] when all up) —
    the golden-fixture text format. *)
