type spec = {
  seed : int;
  count : int;
  group_prob : float;
  node_prob : float;
  origin_fails : bool;
  steps : int;
  repair_steps : int;
}

let default =
  {
    seed = 7;
    count = 32;
    group_prob = 0.08;
    node_prob = 0.02;
    origin_fails = true;
    steps = 48;
    repair_steps = 4;
  }

let validate s =
  let prob name p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg (Printf.sprintf "Scenario: %s must be in [0,1]" name)
  in
  prob "group_prob" s.group_prob;
  prob "node_prob" s.node_prob;
  if s.count <= 0 then invalid_arg "Scenario: count must be positive";
  if s.steps <= 0 then invalid_arg "Scenario: steps must be positive";
  if s.repair_steps < 1 then
    invalid_arg "Scenario: repair_steps must be at least 1"

type t = { index : int; down : bool array }

let down_count t =
  Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 t.down

let is_down t n = t.down.(n)

let signature t =
  let nodes = Array.length t.down in
  let buf = Buffer.create ((nodes + 3) / 4) in
  let nibble = ref 0 and bits = ref 0 in
  let flush () =
    Buffer.add_char buf "0123456789abcdef".[!nibble];
    nibble := 0;
    bits := 0
  in
  Array.iter
    (fun d ->
      if d then nibble := !nibble lor (1 lsl !bits);
      incr bits;
      if !bits = 4 then flush ())
    t.down;
  if !bits > 0 then flush ();
  Buffer.contents buf

(* All coins ride Util.Faults' FNV-1a + splitmix discipline; the spec's
   seed goes through a private Faults spec so the decisions share nothing
   with any ambient fault-injection spec. *)
let coin ~seed ~kind ~key ~prob =
  Util.Faults.decide
    { Util.Faults.none with Util.Faults.seed }
    ~kind ~key ~prob

let sample spec (sys : Topology.System.t) ~(groups : Groups.t array) index =
  validate spec;
  let nodes = Topology.System.node_count sys in
  let origin = sys.Topology.System.origin in
  let down = Array.make nodes false in
  Array.iter
    (fun (g : Groups.t) ->
      if
        coin ~seed:spec.seed ~kind:"avail-group"
          ~key:(Printf.sprintf "%s#%d" g.Groups.name index)
          ~prob:spec.group_prob
      then Array.iter (fun m -> down.(m) <- true) g.Groups.members)
    groups;
  for n = 0 to nodes - 1 do
    if
      coin ~seed:spec.seed ~kind:"avail-node"
        ~key:(Printf.sprintf "n%d#%d" n index)
        ~prob:spec.node_prob
    then down.(n) <- true
  done;
  if not spec.origin_fails then down.(origin) <- false;
  { index; down }

let sample_all spec sys ~groups =
  Array.init spec.count (fun i -> sample spec sys ~groups i)

type timeline = { steps : int; down : bool array array }

let timeline spec (sys : Topology.System.t) ~(groups : Groups.t array) =
  validate spec;
  let nodes = Topology.System.node_count sys in
  let origin = sys.Topology.System.origin in
  let down = Array.init spec.steps (fun _ -> Array.make nodes false) in
  let mark_outage ~start ~duration mark =
    for t = start to min (spec.steps - 1) (start + duration - 1) do
      mark down.(t)
    done
  in
  let duration ~kind key =
    1 + (Util.Faults.hash ~seed:spec.seed ~kind key mod spec.repair_steps)
  in
  for t = 0 to spec.steps - 1 do
    Array.iter
      (fun (g : Groups.t) ->
        let key = Printf.sprintf "%s@%d" g.Groups.name t in
        if
          coin ~seed:spec.seed ~kind:"avail-outage" ~key ~prob:spec.group_prob
        then
          mark_outage ~start:t
            ~duration:(duration ~kind:"avail-repair" key)
            (fun row ->
              Array.iter (fun m -> row.(m) <- true) g.Groups.members))
      groups;
    for n = 0 to nodes - 1 do
      let key = Printf.sprintf "n%d@%d" n t in
      if
        coin ~seed:spec.seed ~kind:"avail-node-outage" ~key
          ~prob:spec.node_prob
      then
        mark_outage ~start:t
          ~duration:(duration ~kind:"avail-node-repair" key)
          (fun row -> row.(n) <- true)
    done
  done;
  if not spec.origin_fails then
    Array.iter (fun row -> row.(origin) <- false) down;
  { steps = spec.steps; down }

let render_timeline tl =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun t row ->
      let downs = ref [] in
      Array.iteri (fun n d -> if d then downs := n :: !downs) row;
      let text =
        match List.rev !downs with
        | [] -> "-"
        | ids ->
          Printf.sprintf "[%s]"
            (String.concat "," (List.map string_of_int ids))
      in
      Buffer.add_string buf (Printf.sprintf "step %02d: down=%s\n" t text))
    tl.down;
  Buffer.contents buf
