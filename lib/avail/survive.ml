type degraded = {
  down_count : int;
  served : float;
  late : float;
  unavailable : float;
  lateness_ms : float;
  violation : float;
  unavail_fraction : float;
  degraded_cost : float;
  cost_ratio : float;
}

let miss_penalty (spec : Mcperf.Spec.t) =
  let sys = spec.Mcperf.Spec.system in
  let nodes = Topology.System.node_count sys in
  let lmax = ref 0. in
  for n = 0 to nodes - 1 do
    for m = 0 to nodes - 1 do
      let l = sys.Topology.System.latency.(n).(m) in
      if Float.is_finite l && l > !lmax then lmax := l
    done
  done;
  let gamma = spec.Mcperf.Spec.costs.Mcperf.Spec.gamma in
  match spec.Mcperf.Spec.goal with
  | Mcperf.Spec.Qos { tlat_ms; _ } ->
    Float.max 1. (gamma *. Float.max 0. (!lmax -. tlat_ms))
  | Mcperf.Spec.Avg_latency _ -> 1.

let degrade ?base (perm : Mcperf.Permission.t) placement ~down =
  let spec = perm.Mcperf.Permission.spec in
  let sys = spec.Mcperf.Spec.system in
  let demand = spec.Mcperf.Spec.demand in
  let nodes = Mcperf.Spec.node_count spec in
  let origin = sys.Topology.System.origin in
  let weight = demand.Workload.Demand.weight in
  let costs = spec.Mcperf.Spec.costs in
  if Array.length down <> nodes then
    invalid_arg "Survive.degrade: down mask has wrong length";
  let base =
    match base with
    | Some b -> b
    | None -> Mcperf.Costing.evaluate perm placement
  in
  (* Failures never refund provisioned resources: everything but the
     latency penalty is sunk. *)
  let sunk = base.Mcperf.Costing.total -. base.Mcperf.Costing.penalty in
  let miss = miss_penalty spec in
  let tlat =
    match spec.Mcperf.Spec.goal with
    | Mcperf.Spec.Qos { tlat_ms; _ } -> tlat_ms
    | Mcperf.Spec.Avg_latency _ -> infinity
  in
  let origin_up = not down.(origin) in
  let served = ref 0. and late = ref 0. and unavailable = ref 0. in
  let lateness = ref 0. in
  let total = ref 0. in
  Array.iteri
    (fun k cells ->
      let w = weight.(k) in
      Array.iter
        (fun (c : Workload.Demand.cell) ->
          let n = c.Workload.Demand.node and i = c.Workload.Demand.interval in
          let rw = w *. c.Workload.Demand.count in
          total := !total +. rw;
          if down.(n) then unavailable := !unavailable +. rw
          else begin
            (* Closest surviving routable replica, origin fallback only
               while the origin is up — the Costing loop with a mask. *)
            let best =
              ref
                (if origin_up then sys.Topology.System.latency.(n).(origin)
                 else infinity)
            in
            for m = 0 to nodes - 1 do
              if
                m <> origin
                && (not down.(m))
                && perm.Mcperf.Permission.reach.(n).(m)
                && placement.(m).(k) land (1 lsl i) <> 0
                && sys.Topology.System.latency.(n).(m) < !best
              then best := sys.Topology.System.latency.(n).(m)
            done;
            if Float.is_finite !best then
              if !best <= tlat then served := !served +. rw
              else begin
                late := !late +. rw;
                lateness := !lateness +. ((!best -. tlat) *. rw)
              end
            else unavailable := !unavailable +. rw
          end)
        cells)
    demand.Workload.Demand.reads;
  let degraded_cost =
    sunk
    +. (costs.Mcperf.Spec.gamma *. !lateness)
    +. (miss *. !unavailable)
  in
  let base_total = base.Mcperf.Costing.total in
  {
    down_count =
      Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 down;
    served = !served;
    late = !late;
    unavailable = !unavailable;
    lateness_ms = !lateness;
    violation = (if !total > 0. then (!late +. !unavailable) /. !total else 0.);
    unavail_fraction = (if !total > 0. then !unavailable /. !total else 0.);
    degraded_cost;
    cost_ratio =
      (if base_total > 0. then degraded_cost /. base_total
       else 1. +. degraded_cost);
  }

type assessment = {
  scenarios : int;
  base_cost : float;
  expected_cost : float;
  mean_violation : float;
  worst_violation : float;
  mean_unavailable : float;
  worst_cost_ratio : float;
  fragility : float;
}

let assess ?(jobs = 1) (perm : Mcperf.Permission.t) placement ~scenarios =
  let count = Array.length scenarios in
  if count = 0 then invalid_arg "Survive.assess: empty scenario set";
  let base = Mcperf.Costing.evaluate perm placement in
  let eval (s : Scenario.t) = degrade ~base perm placement ~down:s.Scenario.down in
  let results =
    if jobs <= 1 then List.map eval (Array.to_list scenarios)
    else Util.Parallel.map_values ~jobs ~f:eval (Array.to_list scenarios)
  in
  let n = float_of_int count in
  let sum f = List.fold_left (fun acc d -> acc +. f d) 0. results in
  let worst f = List.fold_left (fun acc d -> Float.max acc (f d)) 0. results in
  let expected_cost = sum (fun d -> d.degraded_cost) /. n in
  let base_cost = base.Mcperf.Costing.total in
  {
    scenarios = count;
    base_cost;
    expected_cost;
    mean_violation = sum (fun d -> d.violation) /. n;
    worst_violation = worst (fun d -> d.violation);
    mean_unavailable = sum (fun d -> d.unavail_fraction) /. n;
    worst_cost_ratio = worst (fun d -> d.cost_ratio);
    fragility =
      (if base_cost > 0. then (expected_cost /. base_cost) -. 1.
       else expected_cost);
  }
