type result =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Node_limit of { incumbent : (float array * float) option }

let src = Logs.Src.create "ipsolve" ~doc:"branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

(* Observability instruments (cached registry lookups). *)
let m_solves = lazy (Obs.Metrics.counter "branch_bound.solves")
let m_nodes = lazy (Obs.Metrics.counter "branch_bound.nodes")
let m_incumbents = lazy (Obs.Metrics.counter "branch_bound.incumbent_updates")
let m_truncated = lazy (Obs.Metrics.counter "branch_bound.node_limit_hits")

let solve ?(max_nodes = 100_000) ?integer_vars ?(integrality_tol = 1e-6) p =
  let integer_vars =
    match integer_vars with
    | Some vs -> vs
    | None -> Array.init (Lp.Problem.nvars p) (fun j -> j)
  in
  let incumbent = ref None in
  let nodes = ref 0 in
  let truncated = ref false in
  let better objective =
    match !incumbent with
    | None -> true
    | Some (_, best) -> objective < best -. 1e-9
  in
  let most_fractional x =
    let pick = ref None in
    Array.iter
      (fun j ->
        let frac = Float.abs (x.(j) -. Float.round x.(j)) in
        if frac > integrality_tol then
          match !pick with
          | Some (_, best_frac) when frac <= best_frac -> ()
          | _ -> pick := Some (j, frac))
      integer_vars;
    !pick
  in
  let rec explore problem =
    if !nodes >= max_nodes then truncated := true
    else begin
      incr nodes;
      (* Presolve the node first: branching fixes bounds, which cascades
         through the singleton-row rules — many nodes collapse to nothing
         (pruned) or to a single point before the simplex ever runs. The
         reductions are exact, so the restored optimum is the node's true
         relaxation optimum. *)
      let pre = Lp.Presolve.run problem in
      let relaxation =
        match pre.Lp.Presolve.status with
        | `Infeasible -> None
        | `Unchanged | `Reduced ->
          let red = pre.Lp.Presolve.reduced in
          if Lp.Problem.nvars red = 0 then
            Some (pre.Lp.Presolve.restore [||], pre.Lp.Presolve.offset)
          else begin
            match Lp.Simplex.solve red with
            | Lp.Simplex.Infeasible -> None
            | Lp.Simplex.Unbounded ->
              invalid_arg "Branch_bound.solve: unbounded relaxation"
            | Lp.Simplex.Optimal { x; objective } ->
              Some
                ( pre.Lp.Presolve.restore x,
                  objective +. pre.Lp.Presolve.offset )
          end
      in
      match relaxation with
      | None -> ()
      | Some (x, objective) ->
        if better objective then begin
          match most_fractional x with
          | None ->
            Log.debug (fun f ->
                f "node %d: new incumbent %.6g" !nodes objective);
            Obs.Metrics.incr (Lazy.force m_incumbents);
            if Obs.Config.tracing () then
              Obs.Trace.event "branch_bound.incumbent"
                ~attrs:
                  [
                    ("node", Obs.Trace.Int !nodes);
                    ("objective", Obs.Trace.Float objective);
                  ];
            incumbent := Some (Array.copy x, objective)
          | Some (j, _) ->
            let v = x.(j) in
            let lo = problem.Lp.Problem.lower.(j)
            and hi = problem.Lp.Problem.upper.(j) in
            let down_hi = Float.floor v and up_lo = Float.ceil v in
            (* Explore the branch nearest the fractional value first. *)
            let down () =
              if down_hi >= lo -. 1e-12 then
                explore
                  (Lp.Problem.with_var_bounds problem j ~lo
                     ~hi:(Float.min hi down_hi))
            in
            let up () =
              if up_lo <= hi +. 1e-12 then
                explore
                  (Lp.Problem.with_var_bounds problem j ~lo:(Float.max lo up_lo)
                     ~hi)
            in
            if v -. down_hi <= 0.5 then begin
              down ();
              up ()
            end
            else begin
              up ();
              down ()
            end
        end
    end
  in
  Obs.Metrics.incr (Lazy.force m_solves);
  let sp =
    Obs.Trace.span_begin "branch_bound.solve"
      ~attrs:
        [
          ("vars", Obs.Trace.Int (Lp.Problem.nvars p));
          ("max_nodes", Obs.Trace.Int max_nodes);
        ]
  in
  (match explore p with
  | () -> ()
  | exception e ->
    Obs.Trace.span_end sp;
    raise e);
  Obs.Metrics.incr ~by:!nodes (Lazy.force m_nodes);
  if !truncated then Obs.Metrics.incr (Lazy.force m_truncated);
  Obs.Trace.span_end sp
    ~attrs:
      [
        ("nodes", Obs.Trace.Int !nodes);
        ("truncated", Obs.Trace.Bool !truncated);
        ("incumbent", Obs.Trace.Bool (!incumbent <> None));
      ];
  if !truncated then Node_limit { incumbent = !incumbent }
  else
    match !incumbent with
    | Some (x, objective) -> Optimal { x; objective }
    | None -> Infeasible
