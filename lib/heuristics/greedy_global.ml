(* Per-interval greedy filling. For interval i the marginal gain of
   placing object k on node m is the still-uncovered weighted demand for k
   within m's coverage; the score divides by storage (and, for fresh
   placements, creation) cost. Gains only shrink as placements are made —
   the objective is submodular — so the classic lazy-greedy evaluation
   applies: candidates sit in a max-heap keyed by their last known score
   and are re-scored only when popped. *)

let place ~(perm : Mcperf.Permission.t) ~capacity () =
  if capacity < 0. then invalid_arg "Greedy_global.place: negative capacity";
  let spec = perm.Mcperf.Permission.spec in
  let demand = spec.Mcperf.Spec.demand in
  let nodes = Mcperf.Spec.node_count spec in
  let intervals = Mcperf.Spec.interval_count spec in
  let objects = Mcperf.Spec.object_count spec in
  let origin = spec.Mcperf.Spec.system.Topology.System.origin in
  let weight = demand.Workload.Demand.weight in
  let costs = spec.Mcperf.Spec.costs in
  let placement = Mcperf.Costing.empty_placement spec in
  (* Reads per (interval, object): list of (reader node, weighted count),
     origin-served demand excluded. *)
  let cells_at = Array.init intervals (fun _ -> Array.make objects []) in
  Array.iteri
    (fun k kcells ->
      Array.iter
        (fun (c : Workload.Demand.cell) ->
          if not perm.Mcperf.Permission.origin_covered.(c.node) then
            cells_at.(c.interval).(k) <-
              (c.node, c.count *. weight.(k)) :: cells_at.(c.interval).(k))
        kcells)
    demand.Workload.Demand.reads;
  for i = 0 to intervals - 1 do
    (* Uncovered demand per (object, reader node) for this interval. *)
    let uncovered = Array.make objects [||] in
    let remaining = Array.make objects 0. in
    Array.iteri
      (fun k readers ->
        if readers <> [] then begin
          let per_node = Array.make nodes 0. in
          List.iter
            (fun (n, rw) ->
              per_node.(n) <- per_node.(n) +. rw;
              remaining.(k) <- remaining.(k) +. rw)
            readers;
          uncovered.(k) <- per_node
        end)
      cells_at.(i);
    let gain m k =
      if remaining.(k) <= 0. then 0.
      else begin
        let acc = ref 0. in
        let per_node = uncovered.(k) in
        for n = 0 to nodes - 1 do
          if per_node.(n) > 0. && perm.Mcperf.Permission.reach.(n).(m) then
            acc := !acc +. per_node.(n)
        done;
        !acc
      end
    in
    let unit_cost m k =
      let kept = i > 0 && placement.(m).(k) land (1 lsl (i - 1)) <> 0 in
      ignore m;
      (costs.Mcperf.Spec.alpha *. weight.(k))
      +. (if kept then 0. else costs.Mcperf.Spec.beta *. weight.(k))
    in
    let score m k = gain m k /. Float.max (unit_cost m k) 1e-9 in
    let capacity_left = Array.make nodes capacity in
    (* Max-heap via negated scores. *)
    let heap = Util.Pqueue.create ~capacity:1024 () in
    for m = 0 to nodes - 1 do
      if m <> origin then
        for k = 0 to objects - 1 do
          if
            remaining.(k) > 0.
            && weight.(k) <= capacity
            && Mcperf.Permission.store_possible perm ~node:m ~interval:i
                 ~object_id:k
          then begin
            let s = score m k in
            if s > 0. then Util.Pqueue.push heap (-.s) (m, k)
          end
        done
    done;
    let continue_greedy = ref true in
    while !continue_greedy do
      match Util.Pqueue.pop_min heap with
      | None -> continue_greedy := false
      | Some (neg_key, (m, k)) ->
        if capacity_left.(m) >= weight.(k) && placement.(m).(k) land (1 lsl i) = 0
        then begin
          let s = score m k in
          if s <= 0. then ()
          else begin
            let next_best =
              match Util.Pqueue.peek_min heap with
              | Some (nk, _) -> -.nk
              | None -> 0.
            in
            if s >= next_best -. 1e-12 then begin
              (* Still the best: place it. *)
              capacity_left.(m) <- capacity_left.(m) -. weight.(k);
              placement.(m).(k) <- placement.(m).(k) lor (1 lsl i);
              let per_node = uncovered.(k) in
              for n = 0 to nodes - 1 do
                if per_node.(n) > 0. && perm.Mcperf.Permission.reach.(n).(m)
                then begin
                  remaining.(k) <- remaining.(k) -. per_node.(n);
                  per_node.(n) <- 0.
                end
              done
            end
            else
              (* Stale score: reinsert with the fresh value. *)
              Util.Pqueue.push heap (-.s) (m, k)
          end;
          ignore neg_key
        end
    done
  done;
  placement

let evaluate ?placeable ~spec ~capacity () =
  let perm =
    Mcperf.Permission.compute ?placeable spec
      Mcperf.Classes.storage_constrained
  in
  let placement = place ~perm ~capacity () in
  Mcperf.Costing.evaluate perm placement

let strategy =
  Strategy.of_placement_rule
    (module struct
      let name = "greedy-global"
      let heuristic_class = Mcperf.Classes.storage_constrained

      let place perm ~parameter =
        place ~perm ~capacity:(float_of_int parameter) ()

      let parameter_ceiling (perm : Mcperf.Permission.t) =
        let spec = perm.Mcperf.Permission.spec in
        int_of_float
          (Float.ceil
             (Util.Vecops.sum
                spec.Mcperf.Spec.demand.Workload.Demand.weight))
    end)
