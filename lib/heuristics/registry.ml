let builtin : (string * Strategy.factory) list =
  [
    ("greedy-global", Greedy_global.strategy);
    ("greedy-replica", Greedy_replica.strategy);
    ("proportional", Proportional.strategy);
    ("lru-caching", Cache_strategy.lru);
    ("fifo-caching", Cache_strategy.policy Policy_cache.Fifo);
    ("lfu-caching", Cache_strategy.policy Policy_cache.Lfu);
    ("cooperative-caching", Cache_strategy.cooperative);
    ("caching-prefetch", Cache_strategy.prefetching);
    ("cooperative-caching-prefetch", Cache_strategy.cooperative_prefetching);
    ("hierarchical-caching", Cache_strategy.hierarchical ());
  ]

let find name = List.assoc_opt name builtin
let names () = List.map fst builtin
