(** Greedy global storage-constrained placement (Kangasharju et al. style).

    A centralized heuristic with global knowledge: at each evaluation
    interval it fills a uniform per-node capacity budget greedily,
    repeatedly placing the (node, object) pair with the best marginal
    covered demand per unit of cost. Replicas already placed in the
    previous interval are cheaper to keep (no creation cost), which the
    score accounts for, so placements are sticky across intervals for
    stable workloads.

    This is the deployed representative of the "storage constrained"
    class; its cost is evaluated through {!Mcperf.Costing} under that
    class, so the fixed-capacity padding is charged exactly as in the
    lower bound's rounding. *)

val place :
  perm:Mcperf.Permission.t ->
  capacity:float ->
  unit ->
  Mcperf.Costing.placement
(** [place ~perm ~capacity ()] runs the greedy heuristic with the given
    uniform per-node capacity (in weighted object units). The permission
    analysis supplies reach/origin information; the heuristic respects the
    class's placement permissions, so the result can be compared with the
    storage-constrained bound. *)

val evaluate :
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  capacity:float ->
  unit ->
  Mcperf.Costing.evaluation
(** Convenience: place under the storage-constrained class permissions and
    evaluate the result. *)

val strategy : Strategy.factory
(** The same heuristic behind the strategy-object API: context parameter
    = per-node capacity (weighted object units, integer grid). Placements
    and evaluations are identical to [evaluate] on the observed demand. *)
