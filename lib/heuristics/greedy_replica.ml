let place ~(perm : Mcperf.Permission.t) ~replicas () =
  if replicas < 0 then invalid_arg "Greedy_replica.place: negative replicas";
  let spec = perm.Mcperf.Permission.spec in
  let demand = spec.Mcperf.Spec.demand in
  let nodes = Mcperf.Spec.node_count spec in
  let intervals = Mcperf.Spec.interval_count spec in
  let origin = spec.Mcperf.Spec.system.Topology.System.origin in
  let weight = demand.Workload.Demand.weight in
  let full_mask = Mcperf.Permission.interval_bits intervals in
  let placement = Mcperf.Costing.empty_placement spec in
  Array.iteri
    (fun k kcells ->
      (* Demand per reader node for this object (excluding demand the
         origin already serves in time). *)
      let reader_demand = Array.make nodes 0. in
      Array.iter
        (fun (c : Workload.Demand.cell) ->
          if not perm.Mcperf.Permission.origin_covered.(c.node) then
            reader_demand.(c.node) <-
              reader_demand.(c.node) +. (c.count *. weight.(k)))
        kcells;
      let covered = Array.make nodes false in
      let chosen = ref 0 in
      let continue_greedy = ref true in
      while !chosen < replicas && !continue_greedy do
        let best = ref None in
        for m = 0 to nodes - 1 do
          if m <> origin && placement.(m).(k) = 0
             && perm.Mcperf.Permission.store_mask.(m).(k) <> 0
          then begin
            let g = ref 0. in
            for n = 0 to nodes - 1 do
              if
                (not covered.(n))
                && reader_demand.(n) > 0.
                && perm.Mcperf.Permission.reach.(n).(m)
              then g := !g +. reader_demand.(n)
            done;
            if !g > 0. then
              match !best with
              | Some (_, g') when g' >= !g -> ()
              | _ -> best := Some (m, !g)
          end
        done;
        match !best with
        | None -> continue_greedy := false
        | Some (m, _) ->
          placement.(m).(k) <- full_mask;
          incr chosen;
          for n = 0 to nodes - 1 do
            if perm.Mcperf.Permission.reach.(n).(m) then covered.(n) <- true
          done
      done)
    demand.Workload.Demand.reads;
  placement

let evaluate ?placeable ~spec ~replicas () =
  let perm =
    Mcperf.Permission.compute ?placeable spec
      Mcperf.Classes.replica_constrained_uniform
  in
  let placement = place ~perm ~replicas () in
  Mcperf.Costing.evaluate perm placement

let strategy =
  Strategy.of_placement_rule
    (module struct
      let name = "greedy-replica"
      let heuristic_class = Mcperf.Classes.replica_constrained_uniform
      let place perm ~parameter = place ~perm ~replicas:parameter ()

      let parameter_ceiling (perm : Mcperf.Permission.t) =
        Mcperf.Spec.node_count perm.Mcperf.Permission.spec - 1
    end)
