(** The strategy-object API: every deployed heuristic behind one
    interface.

    A strategy is a first-class module ({!S}) with an opaque state:
    [init] builds the state from a {!Context.t} (topology, cost
    parameters, performance goal, deployment restrictions, and the
    heuristic's one provisioning parameter), [observe] folds in an epoch
    of workload ({!delta}), and [place] / [assess] ask for the current
    placement decision and its priced verdict. The offline runner
    ({!Sim.Runner}) drives one observe over the whole trace; the online
    engine ([Online.Engine]) drives one observe per epoch.

    Strategies are pure state machines: observing the same deltas in the
    same order yields the same placement, which is what makes epoch
    output byte-identical across worker counts. *)

module Context : sig
  type t = {
    system : Topology.System.t;
    costs : Mcperf.Spec.costs;
    goal : Mcperf.Spec.goal;
    placeable : bool array option;
        (** deployment restriction: sites allowed to hold replicas *)
    parameter : int;
        (** the heuristic's provisioning knob — per-node capacity for
            storage-constrained strategies, replicas per object for
            replica-constrained ones, cache capacity for caching, total
            replica budget for proportional *)
  }

  val make :
    system:Topology.System.t ->
    ?placeable:bool array ->
    ?costs:Mcperf.Spec.costs ->
    goal:Mcperf.Spec.goal ->
    ?parameter:int ->
    unit ->
    t
  (** Defaults: the paper's case-study costs, parameter 0. *)

  val of_spec : ?placeable:bool array -> ?parameter:int -> Mcperf.Spec.t -> t
  (** Context of an offline spec (same system/costs/goal). *)

  val with_parameter : t -> int -> t
  (** Same context at a different provisioning parameter — how the
      min-feasible search explores the knob. *)
end

type delta = {
  epoch : int;  (** 0-based epoch index *)
  start_interval : int;  (** first interval this epoch contributes *)
  intervals : int;  (** cumulative interval count after this epoch *)
  demand : Workload.Demand.t;  (** cumulative interval-bucketed demand *)
  chunk : Workload.Trace.t option;
      (** this epoch's events alone (absolute times); [None] when the
          driver only has interval-level demand *)
  trace : Workload.Trace.t option;
      (** cumulative event trace; required by event-level (caching)
          strategies, optional for interval-level ones *)
}

val delta_of_spec : ?trace:Workload.Trace.t -> Mcperf.Spec.t -> delta
(** The offline case as a single epoch covering the whole horizon. *)

type detail =
  | Evaluation of Mcperf.Costing.evaluation
      (** interval-level strategies, priced by {!Mcperf.Costing} *)
  | Cache_outcome of Event_cache.outcome
      (** event-level strategies, priced by the cache simulator *)

type verdict = {
  cost : float;
  worst_qos : float;
  meets_goal : bool;
  placement : Mcperf.Costing.placement option;
      (** [None] only for cache runs past the 62-interval bitmask limit *)
  detail : detail;
}

module type S = sig
  type state

  val name : string

  val heuristic_class : Mcperf.Classes.t
  (** The heuristic class whose lower bound this strategy is compared
      against (the paper's Table 3 pairing). *)

  val init : Context.t -> state
  val observe : state -> delta -> state

  val parameter_ceiling : state -> int
  (** Largest provisioning parameter worth trying on the observed
      workload — the search's upper bound. *)

  val place : state -> Mcperf.Costing.placement
  (** Current placement decision. Raises [Invalid_argument] before any
      workload is observed, or for cache strategies past the bitmask
      interval limit. *)

  val assess : state -> verdict
end

type instance = Instance : (module S with type state = 's) * 's -> instance
(** A strategy packed with its state; the only shape drivers handle. *)

type factory = Context.t -> instance

val name : instance -> string
val heuristic_class : instance -> Mcperf.Classes.t
val observe : instance -> delta -> instance
val parameter_ceiling : instance -> int
val place : instance -> Mcperf.Costing.placement
val assess : instance -> verdict

val worst_qos : float array -> float
(** Minimum per-node QoS, 1. when empty (the runner's reporting
    convention). *)

(** Adapter for the interval-level placement heuristics: supply the raw
    placement rule and its class; the adapter rebuilds the spec from the
    latest cumulative demand and prices placements through
    {!Mcperf.Costing.evaluate} — the exact sequence of the pre-redesign
    [evaluate] entry points. *)
module type PLACEMENT_RULE = sig
  val name : string
  val heuristic_class : Mcperf.Classes.t
  val place : Mcperf.Permission.t -> parameter:int -> Mcperf.Costing.placement

  val parameter_ceiling : Mcperf.Permission.t -> int
  (** Search ceiling, given the class permissions on the observed
      workload (the permission record carries the spec). *)
end

val of_placement_rule : (module PLACEMENT_RULE) -> factory
