(** Greedy replica-constrained placement (Qiu et al. style).

    A centralized heuristic that maintains a fixed number of replicas per
    object for the whole execution. Replica locations are chosen greedily
    per object: each successive replica goes to the node covering the most
    still-uncovered demand for that object (aggregated over the run).
    Replicas are held for the full horizon, which is exactly the cost
    behaviour the replica-constraint lower bound charges (heavy for
    rarely-accessed objects, cheap for uniformly popular ones — the
    paper's WEB vs GROUP contrast). *)

val place :
  perm:Mcperf.Permission.t ->
  replicas:int ->
  unit ->
  Mcperf.Costing.placement
(** [place ~perm ~replicas ()] picks up to [replicas] locations per object
    (fewer when no further node adds coverage). *)

val evaluate :
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  replicas:int ->
  unit ->
  Mcperf.Costing.evaluation
(** Place under the uniform replica-constrained class and evaluate. *)

val strategy : Strategy.factory
(** Strategy-object port: context parameter = replicas per object.
    Placements identical to [evaluate] on the observed demand. *)
