type mode =
  | Local
  | Cooperative
  | Hierarchical of { cluster_radius_ms : float }

(* Greedy latency-ball clustering: repeatedly seed a cluster at the
   unassigned node with the most unassigned neighbours within the radius
   and absorb them. Deterministic given the latency matrix. *)
let build_clusters latency ~nodes ~radius =
  let cluster = Array.make nodes (-1) in
  let next = ref 0 in
  let unassigned () =
    let best = ref (-1) and best_count = ref (-1) in
    for n = 0 to nodes - 1 do
      if cluster.(n) < 0 then begin
        let count = ref 0 in
        for m = 0 to nodes - 1 do
          if cluster.(m) < 0 && latency.(n).(m) <= radius then incr count
        done;
        if !count > !best_count then begin
          best := n;
          best_count := !count
        end
      end
    done;
    !best
  in
  let rec loop () =
    let seed = unassigned () in
    if seed >= 0 then begin
      for m = 0 to nodes - 1 do
        if cluster.(m) < 0 && latency.(seed).(m) <= radius then
          cluster.(m) <- !next
      done;
      incr next;
      loop ()
    end
  in
  loop ();
  cluster

type write_policy = Update | Invalidate

type outcome = {
  capacity : int;
  hits_local : int;
  hits_remote : int;
  misses : int;
  insertions : int;
  qos : float array;
  avg_latency : float array;
  provisioned_cost : float;
  occupancy_cost : float;
  write_messages : float;
  placement : Mcperf.Costing.placement;
}

let meets_qos outcome ~fraction =
  Array.for_all (fun q -> q >= fraction -. 1e-9) outcome.qos

let simulate ~system ~trace ~intervals ~costs ~tlat_ms ~capacity ~mode
    ?(prefetch = false) ?placeable ?(policy = Policy_cache.Lru)
    ?(write_policy = Update) () =
  let nodes = Topology.System.node_count system in
  if nodes > 62 then
    invalid_arg "Event_cache.simulate: at most 62 nodes supported";
  if capacity < 0 then invalid_arg "Event_cache.simulate: negative capacity";
  if intervals <= 0 then invalid_arg "Event_cache.simulate: intervals must be positive";
  if intervals > 62 then
    invalid_arg "Event_cache.simulate: at most 62 intervals supported";
  let origin = system.Topology.System.origin in
  let placeable =
    match placeable with
    | None -> Array.make nodes true
    | Some p ->
      if Array.length p <> nodes then
        invalid_arg "Event_cache.simulate: placeable length mismatch";
      p
  in
  let latency = system.Topology.System.latency in
  let objects = Workload.Trace.object_count trace in
  let caches =
    Array.init nodes (fun n ->
        Policy_cache.create policy
          ~capacity:(if placeable.(n) then capacity else 0))
  in
  (* Directory for cooperative lookup: per object, bitmask of caching
     nodes. *)
  let holders = Array.make objects 0 in
  (* Peers sorted by latency, nearest first, self and origin excluded. *)
  let peer_order =
    Array.init nodes (fun n ->
        let others = ref [] in
        for m = 0 to nodes - 1 do
          if m <> n && m <> origin && placeable.(m) then others := m :: !others
        done;
        let arr = Array.of_list !others in
        Array.sort (fun a b -> compare latency.(n).(a) latency.(n).(b)) arr;
        arr)
  in
  let clusters =
    match mode with
    | Hierarchical { cluster_radius_ms } ->
      build_clusters latency ~nodes ~radius:cluster_radius_ms
    | Local | Cooperative -> Array.make nodes 0
  in
  let insertions = ref 0 in
  let hits_local = ref 0 and hits_remote = ref 0 and misses = ref 0 in
  let covered = Array.make nodes 0 and totals = Array.make nodes 0 in
  let latency_sum = Array.make nodes 0. in
  let occupancy = ref 0. in
  let write_messages = ref 0. in
  (* End-of-interval snapshots of the cache contents, as MC-PERF
     placement bitmasks (bit [i]: cached when interval [i] closed) — the
     survivability layer re-prices these under failure scenarios. *)
  let placement = Array.make_matrix nodes objects 0 in
  let interval_s = Workload.Trace.duration_s trace /. float_of_int intervals in
  let cache_insert n k =
    if n <> origin && placeable.(n) && capacity > 0 then begin
      if not (Policy_cache.mem caches.(n) k) then begin
        incr insertions;
        (match Policy_cache.insert caches.(n) k with
        | Some evicted ->
          if evicted <> k then
            holders.(evicted) <- holders.(evicted) land lnot (1 lsl n)
        | None -> ());
        if Policy_cache.mem caches.(n) k then
          holders.(k) <- holders.(k) lor (1 lsl n)
      end
      else ignore (Policy_cache.touch caches.(n) k)
    end
  in
  (* Objects each node accesses per interval, for the prefetch oracle. *)
  let prefetch_plan =
    if not prefetch then [||]
    else begin
      let plan = Array.init nodes (fun _ -> Array.make intervals []) in
      let counts = Hashtbl.create 1024 in
      Workload.Trace.iter
        (fun ~time ~node ~object_id ~kind ->
          if kind = Workload.Trace.Read then begin
            let i =
              min (intervals - 1) (int_of_float (time /. interval_s))
            in
            let key = (node, i, object_id) in
            Hashtbl.replace counts key
              (1 + Option.value (Hashtbl.find_opt counts key) ~default:0)
          end)
        trace;
      Hashtbl.iter
        (fun (n, i, k) c -> plan.(n).(i) <- (c, k) :: plan.(n).(i))
        counts;
      Array.iteri
        (fun n per_interval ->
          Array.iteri
            (fun i entries ->
              plan.(n).(i) <-
                List.sort (fun (c1, _) (c2, _) -> compare c2 c1) entries)
            per_interval;
          ignore n)
        plan;
      plan
    end
  in
  let run_prefetch i =
    for n = 0 to nodes - 1 do
      if n <> origin && placeable.(n) then begin
        let budget = ref capacity in
        List.iter
          (fun (_, k) ->
            if !budget > 0 then begin
              cache_insert n k;
              decr budget
            end)
          prefetch_plan.(n).(i)
      end
    done
  in
  (* Occupancy and placement are sampled together when an interval
     closes. *)
  let sample_interval iv =
    for n = 0 to nodes - 1 do
      if n <> origin then begin
        occupancy := !occupancy +. float_of_int (Policy_cache.size caches.(n));
        List.iter
          (fun k -> placement.(n).(k) <- placement.(n).(k) lor (1 lsl iv))
          (Policy_cache.contents caches.(n))
      end
    done
  in
  let current_interval = ref (-1) in
  let enter_interval i =
    while !current_interval < i do
      if !current_interval >= 0 then sample_interval !current_interval;
      incr current_interval;
      if prefetch && !current_interval < intervals then
        run_prefetch !current_interval
    done
  in
  enter_interval 0;
  Workload.Trace.iter
    (fun ~time ~node:n ~object_id:k ~kind ->
      let i = min (intervals - 1) (int_of_float (time /. interval_s)) in
      enter_interval i;
      match kind with
      | Workload.Trace.Write ->
        (* Writes reach every cached copy: either refreshing it in place
           (update) or dropping it (invalidate). Either way one message
           per copy is accounted when delta is charged. *)
        let copies = ref 0 in
        for m = 0 to nodes - 1 do
          if holders.(k) land (1 lsl m) <> 0 then begin
            incr copies;
            match write_policy with
            | Invalidate ->
              ignore (Policy_cache.remove caches.(m) k);
              holders.(k) <- holders.(k) land lnot (1 lsl m)
            | Update -> ()
          end
        done;
        write_messages := !write_messages +. float_of_int !copies
      | Workload.Trace.Read ->
        totals.(n) <- totals.(n) + 1;
        let lat =
          if n = origin then 0.
          else if Policy_cache.touch caches.(n) k then begin
            incr hits_local;
            0.
          end
          else begin
            let from_peer =
              match mode with
              | Local -> None
              | Cooperative | Hierarchical _ ->
                Array.fold_left
                  (fun acc m ->
                    match acc with
                    | Some _ -> acc
                    | None ->
                      if holders.(k) land (1 lsl m) <> 0 then Some m else None)
                  None peer_order.(n)
            in
            (match from_peer with
            | Some m when latency.(n).(m) < latency.(n).(origin) ->
              incr hits_remote;
              (* Hierarchical mode: a copy inside the cluster serves the
                 whole cluster; do not duplicate it locally. *)
              let same_cluster =
                match mode with
                | Hierarchical _ -> clusters.(n) = clusters.(m)
                | Local | Cooperative -> false
              in
              if same_cluster then ignore (Policy_cache.touch caches.(m) k)
              else cache_insert n k;
              latency.(n).(m)
            | Some _ | None ->
              incr misses;
              cache_insert n k;
              latency.(n).(origin))
          end
        in
        latency_sum.(n) <- latency_sum.(n) +. lat;
        if lat <= tlat_ms then covered.(n) <- covered.(n) + 1)
    trace;
  enter_interval (intervals - 1);
  (* Final interval's sample. *)
  sample_interval (intervals - 1);
  let qos =
    Array.init nodes (fun n ->
        if totals.(n) = 0 then 1.
        else float_of_int covered.(n) /. float_of_int totals.(n))
  in
  let avg_latency =
    Array.init nodes (fun n ->
        if totals.(n) = 0 then 0.
        else latency_sum.(n) /. float_of_int totals.(n))
  in
  let sites =
    let acc = ref 0 in
    for n = 0 to nodes - 1 do
      if n <> origin && placeable.(n) then incr acc
    done;
    float_of_int !acc
  in
  let creation_cost =
    costs.Mcperf.Spec.beta *. float_of_int !insertions
  in
  let write_cost = costs.Mcperf.Spec.delta *. !write_messages in
  {
    capacity;
    hits_local = !hits_local;
    hits_remote = !hits_remote;
    misses = !misses;
    insertions = !insertions;
    qos;
    avg_latency;
    provisioned_cost =
      (costs.Mcperf.Spec.alpha *. float_of_int capacity *. sites
      *. float_of_int intervals)
      +. creation_cost +. write_cost;
    occupancy_cost =
      (costs.Mcperf.Spec.alpha *. !occupancy) +. creation_cost +. write_cost;
    write_messages = !write_messages;
    placement;
  }
