type mode =
  | Local
  | Cooperative
  | Hierarchical of { cluster_radius_ms : float }

(* Greedy latency-ball clustering: repeatedly seed a cluster at the
   unassigned node with the most unassigned neighbours within the radius
   and absorb them. Deterministic given the latency matrix. *)
let build_clusters latency ~nodes ~radius =
  let cluster = Array.make nodes (-1) in
  let next = ref 0 in
  let unassigned () =
    let best = ref (-1) and best_count = ref (-1) in
    for n = 0 to nodes - 1 do
      if cluster.(n) < 0 then begin
        let count = ref 0 in
        for m = 0 to nodes - 1 do
          if cluster.(m) < 0 && latency.(n).(m) <= radius then incr count
        done;
        if !count > !best_count then begin
          best := n;
          best_count := !count
        end
      end
    done;
    !best
  in
  let rec loop () =
    let seed = unassigned () in
    if seed >= 0 then begin
      for m = 0 to nodes - 1 do
        if cluster.(m) < 0 && latency.(seed).(m) <= radius then
          cluster.(m) <- !next
      done;
      incr next;
      loop ()
    end
  in
  loop ();
  cluster

type write_policy = Update | Invalidate

(* Wide end-of-interval snapshots: one bit per (node, object, interval),
   packed node-major then object-major into a single byte string so the
   interval count is bounded by memory, not by the word size. *)
type snapshots = {
  snap_nodes : int;
  snap_objects : int;
  snap_intervals : int;
  snap_stride : int;  (* bytes per (node, object) row: ceil(intervals/8) *)
  snap_bits : Bytes.t;
}

let snapshots_create ~nodes ~objects ~intervals =
  let stride = (intervals + 7) / 8 in
  {
    snap_nodes = nodes;
    snap_objects = objects;
    snap_intervals = intervals;
    snap_stride = stride;
    snap_bits = Bytes.make (nodes * objects * stride) '\000';
  }

let snapshots_set s ~node ~object_id ~interval =
  let base = ((node * s.snap_objects) + object_id) * s.snap_stride in
  let i = base + (interval lsr 3) in
  Bytes.unsafe_set s.snap_bits i
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get s.snap_bits i) lor (1 lsl (interval land 7))))

let held s ~node ~object_id ~interval =
  if
    node < 0 || node >= s.snap_nodes || object_id < 0
    || object_id >= s.snap_objects || interval < 0
    || interval >= s.snap_intervals
  then invalid_arg "Event_cache.held: index out of bounds";
  let base = ((node * s.snap_objects) + object_id) * s.snap_stride in
  Char.code (Bytes.get s.snap_bits (base + (interval lsr 3)))
  land (1 lsl (interval land 7))
  <> 0

(* The MC-PERF costing layer packs interval sets into a native int, so a
   snapshot matrix in that form exists only up to this many intervals. *)
let placement_interval_limit = 62

type outcome = {
  capacity : int;
  hits_local : int;
  hits_remote : int;
  misses : int;
  insertions : int;
  qos : float array;
  avg_latency : float array;
  provisioned_cost : float;
  occupancy_cost : float;
  write_messages : float;
  placement : Mcperf.Costing.placement option;
  snapshots : snapshots;
}

let meets_qos outcome ~fraction =
  Array.for_all (fun q -> q >= fraction -. 1e-9) outcome.qos

let simulate ~system ~trace ~intervals ~costs ~tlat_ms ~capacity ~mode
    ?(prefetch = false) ?placeable ?(policy = Policy_cache.Lru)
    ?(write_policy = Update) () =
  let nodes = Topology.System.node_count system in
  if nodes > 62 then
    invalid_arg "Event_cache.simulate: at most 62 nodes supported";
  if capacity < 0 then invalid_arg "Event_cache.simulate: negative capacity";
  if intervals <= 0 then invalid_arg "Event_cache.simulate: intervals must be positive";
  let origin = system.Topology.System.origin in
  let placeable =
    match placeable with
    | None -> Array.make nodes true
    | Some p ->
      if Array.length p <> nodes then
        invalid_arg "Event_cache.simulate: placeable length mismatch";
      p
  in
  let latency = system.Topology.System.latency in
  let objects = Workload.Trace.object_count trace in
  let caches =
    Array.init nodes (fun n ->
        Policy_cache.create policy
          ~capacity:(if placeable.(n) then capacity else 0))
  in
  (* Directory for cooperative lookup: per object, bitmask of caching
     nodes. *)
  let holders = Array.make objects 0 in
  (* Peers sorted by latency, nearest first, self and origin excluded. *)
  let peer_order =
    Array.init nodes (fun n ->
        let others = ref [] in
        for m = 0 to nodes - 1 do
          if m <> n && m <> origin && placeable.(m) then others := m :: !others
        done;
        let arr = Array.of_list !others in
        Array.sort (fun a b -> compare latency.(n).(a) latency.(n).(b)) arr;
        arr)
  in
  let clusters =
    match mode with
    | Hierarchical { cluster_radius_ms } ->
      build_clusters latency ~nodes ~radius:cluster_radius_ms
    | Local | Cooperative -> Array.make nodes 0
  in
  let insertions = ref 0 in
  let hits_local = ref 0 and hits_remote = ref 0 and misses = ref 0 in
  let covered = Array.make nodes 0 and totals = Array.make nodes 0 in
  let latency_sum = Array.make nodes 0. in
  let occupancy = ref 0. in
  let write_messages = ref 0. in
  (* End-of-interval snapshots of the cache contents (bit [i]: cached
     when interval [i] closed) — the survivability layer re-prices these
     under failure scenarios. Wide bit-packed, so long traces are not
     bounded by the 62-interval MC-PERF placement word. *)
  let snapshots = snapshots_create ~nodes ~objects ~intervals in
  let interval_s = Workload.Trace.duration_s trace /. float_of_int intervals in
  let cache_insert n k =
    if n <> origin && placeable.(n) && capacity > 0 then begin
      if not (Policy_cache.mem caches.(n) k) then begin
        incr insertions;
        (match Policy_cache.insert caches.(n) k with
        | Some evicted ->
          if evicted <> k then
            holders.(evicted) <- holders.(evicted) land lnot (1 lsl n)
        | None -> ());
        if Policy_cache.mem caches.(n) k then
          holders.(k) <- holders.(k) lor (1 lsl n)
      end
      else ignore (Policy_cache.touch caches.(n) k)
    end
  in
  (* Objects each node accesses per interval, for the prefetch oracle. *)
  let prefetch_plan =
    if not prefetch then [||]
    else begin
      let plan = Array.init nodes (fun _ -> Array.make intervals []) in
      let counts = Hashtbl.create 1024 in
      Workload.Trace.iter
        (fun ~time ~node ~object_id ~kind ->
          if kind = Workload.Trace.Read then begin
            let i =
              min (intervals - 1) (int_of_float (time /. interval_s))
            in
            let key = (node, i, object_id) in
            Hashtbl.replace counts key
              (1 + Option.value (Hashtbl.find_opt counts key) ~default:0)
          end)
        trace;
      Hashtbl.iter
        (fun (n, i, k) c -> plan.(n).(i) <- (c, k) :: plan.(n).(i))
        counts;
      Array.iteri
        (fun n per_interval ->
          Array.iteri
            (fun i entries ->
              plan.(n).(i) <-
                List.sort (fun (c1, _) (c2, _) -> compare c2 c1) entries)
            per_interval;
          ignore n)
        plan;
      plan
    end
  in
  let run_prefetch i =
    for n = 0 to nodes - 1 do
      if n <> origin && placeable.(n) then begin
        let budget = ref capacity in
        List.iter
          (fun (_, k) ->
            if !budget > 0 then begin
              cache_insert n k;
              decr budget
            end)
          prefetch_plan.(n).(i)
      end
    done
  in
  (* Occupancy and placement are sampled together when an interval
     closes. *)
  let sample_interval iv =
    for n = 0 to nodes - 1 do
      if n <> origin then begin
        occupancy := !occupancy +. float_of_int (Policy_cache.size caches.(n));
        List.iter
          (fun k -> snapshots_set snapshots ~node:n ~object_id:k ~interval:iv)
          (Policy_cache.contents caches.(n))
      end
    done
  in
  let current_interval = ref (-1) in
  let enter_interval i =
    while !current_interval < i do
      if !current_interval >= 0 then sample_interval !current_interval;
      incr current_interval;
      if prefetch && !current_interval < intervals then
        run_prefetch !current_interval
    done
  in
  enter_interval 0;
  Workload.Trace.iter
    (fun ~time ~node:n ~object_id:k ~kind ->
      let i = min (intervals - 1) (int_of_float (time /. interval_s)) in
      enter_interval i;
      match kind with
      | Workload.Trace.Write ->
        (* Writes reach every cached copy: either refreshing it in place
           (update) or dropping it (invalidate). Either way one message
           per copy is accounted when delta is charged. *)
        let copies = ref 0 in
        for m = 0 to nodes - 1 do
          if holders.(k) land (1 lsl m) <> 0 then begin
            incr copies;
            match write_policy with
            | Invalidate ->
              ignore (Policy_cache.remove caches.(m) k);
              holders.(k) <- holders.(k) land lnot (1 lsl m)
            | Update -> ()
          end
        done;
        write_messages := !write_messages +. float_of_int !copies
      | Workload.Trace.Read ->
        totals.(n) <- totals.(n) + 1;
        let lat =
          if n = origin then 0.
          else if Policy_cache.touch caches.(n) k then begin
            incr hits_local;
            0.
          end
          else begin
            let from_peer =
              match mode with
              | Local -> None
              | Cooperative | Hierarchical _ ->
                Array.fold_left
                  (fun acc m ->
                    match acc with
                    | Some _ -> acc
                    | None ->
                      if holders.(k) land (1 lsl m) <> 0 then Some m else None)
                  None peer_order.(n)
            in
            (match from_peer with
            | Some m when latency.(n).(m) < latency.(n).(origin) ->
              incr hits_remote;
              (* Hierarchical mode: a copy inside the cluster serves the
                 whole cluster; do not duplicate it locally. *)
              let same_cluster =
                match mode with
                | Hierarchical _ -> clusters.(n) = clusters.(m)
                | Local | Cooperative -> false
              in
              if same_cluster then ignore (Policy_cache.touch caches.(m) k)
              else cache_insert n k;
              latency.(n).(m)
            | Some _ | None ->
              incr misses;
              cache_insert n k;
              latency.(n).(origin))
          end
        in
        latency_sum.(n) <- latency_sum.(n) +. lat;
        if lat <= tlat_ms then covered.(n) <- covered.(n) + 1)
    trace;
  enter_interval (intervals - 1);
  (* Final interval's sample. *)
  sample_interval (intervals - 1);
  let qos =
    Array.init nodes (fun n ->
        if totals.(n) = 0 then 1.
        else float_of_int covered.(n) /. float_of_int totals.(n))
  in
  let avg_latency =
    Array.init nodes (fun n ->
        if totals.(n) = 0 then 0.
        else latency_sum.(n) /. float_of_int totals.(n))
  in
  let sites =
    let acc = ref 0 in
    for n = 0 to nodes - 1 do
      if n <> origin && placeable.(n) then incr acc
    done;
    float_of_int !acc
  in
  let creation_cost =
    costs.Mcperf.Spec.beta *. float_of_int !insertions
  in
  let write_cost = costs.Mcperf.Spec.delta *. !write_messages in
  (* The int-bitmask placement view exists only while the interval set
     fits an MC-PERF placement word; longer traces keep the wide
     snapshots and skip the re-pricing view. *)
  let placement =
    if intervals > placement_interval_limit then None
    else
      Some
        (Array.init nodes (fun n ->
             Array.init objects (fun k ->
                 let mask = ref 0 in
                 for iv = 0 to intervals - 1 do
                   if held snapshots ~node:n ~object_id:k ~interval:iv then
                     mask := !mask lor (1 lsl iv)
                 done;
                 !mask)))
  in
  {
    capacity;
    hits_local = !hits_local;
    hits_remote = !hits_remote;
    misses = !misses;
    insertions = !insertions;
    qos;
    avg_latency;
    provisioned_cost =
      (costs.Mcperf.Spec.alpha *. float_of_int capacity *. sites
      *. float_of_int intervals)
      +. creation_cost +. write_cost;
    occupancy_cost =
      (costs.Mcperf.Spec.alpha *. !occupancy) +. creation_cost +. write_cost;
    write_messages = !write_messages;
    placement;
    snapshots;
  }
