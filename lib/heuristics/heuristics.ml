(** Entry module of the heuristics library.

    The strategy-object API is the front door: {!Strategy} defines the
    module type, context and packed instances; {!Registry} lists the
    built-in strategies; {!Cache_strategy} builds event-level (caching)
    strategies from a config. The per-heuristic modules below keep their
    original [place]/[evaluate]/[search] entry points as thin legacy
    wrappers for one release — new callers should go through
    {!Strategy.factory} instances instead of reaching into per-module
    signatures. *)

module Strategy = Strategy
module Context = Strategy.Context
module Registry = Registry
module Cache_strategy = Cache_strategy

(* Heuristic implementations (legacy entry points + [strategy] ports). *)
module Greedy_global = Greedy_global
module Greedy_replica = Greedy_replica
module Proportional = Proportional
module Event_cache = Event_cache
module Lru_cache = Lru_cache
module Policy_cache = Policy_cache
module Placement_baselines = Placement_baselines
