module Context = struct
  type t = {
    system : Topology.System.t;
    costs : Mcperf.Spec.costs;
    goal : Mcperf.Spec.goal;
    placeable : bool array option;
    parameter : int;
  }

  let make ~system ?placeable ?(costs = Mcperf.Spec.default_costs) ~goal
      ?(parameter = 0) () =
    if parameter < 0 then
      invalid_arg "Strategy.Context.make: parameter must be >= 0";
    { system; costs; goal; placeable; parameter }

  let of_spec ?placeable ?(parameter = 0) (spec : Mcperf.Spec.t) =
    {
      system = spec.Mcperf.Spec.system;
      costs = spec.Mcperf.Spec.costs;
      goal = spec.Mcperf.Spec.goal;
      placeable;
      parameter;
    }

  let with_parameter t parameter =
    if parameter < 0 then
      invalid_arg "Strategy.Context.with_parameter: parameter must be >= 0";
    { t with parameter }
end

type delta = {
  epoch : int;
  start_interval : int;
  intervals : int;
  demand : Workload.Demand.t;
  chunk : Workload.Trace.t option;
  trace : Workload.Trace.t option;
}

let delta_of_spec ?trace (spec : Mcperf.Spec.t) =
  {
    epoch = 0;
    start_interval = 0;
    intervals = Mcperf.Spec.interval_count spec;
    demand = spec.Mcperf.Spec.demand;
    chunk = trace;
    trace;
  }

type detail =
  | Evaluation of Mcperf.Costing.evaluation
  | Cache_outcome of Event_cache.outcome

type verdict = {
  cost : float;
  worst_qos : float;
  meets_goal : bool;
  placement : Mcperf.Costing.placement option;
  detail : detail;
}

module type S = sig
  type state

  val name : string
  val heuristic_class : Mcperf.Classes.t
  val init : Context.t -> state
  val observe : state -> delta -> state
  val parameter_ceiling : state -> int
  val place : state -> Mcperf.Costing.placement
  val assess : state -> verdict
end

type instance = Instance : (module S with type state = 's) * 's -> instance
type factory = Context.t -> instance

let name (Instance ((module M), _)) = M.name
let heuristic_class (Instance ((module M), _)) = M.heuristic_class
let observe (Instance ((module M), st)) d = Instance ((module M), M.observe st d)
let parameter_ceiling (Instance ((module M), st)) = M.parameter_ceiling st
let place (Instance ((module M), st)) = M.place st
let assess (Instance ((module M), st)) = M.assess st

let worst_qos arr = Array.fold_left Float.min 1. arr

let spec_of (ctx : Context.t) demand =
  Mcperf.Spec.make ~system:ctx.Context.system ~demand ~costs:ctx.Context.costs
    ~goal:ctx.Context.goal ()

(* Shared skeleton for the placement heuristics (greedy global / greedy
   replica / proportional): state is the context plus the latest
   cumulative demand; [assess] rebuilds the spec, computes the class
   permissions, places, and prices the placement — exactly the sequence
   of the pre-redesign [evaluate] entry points, so ported strategies
   reproduce their legacy placements bit for bit. *)
module type PLACEMENT_RULE = sig
  val name : string
  val heuristic_class : Mcperf.Classes.t
  val place : Mcperf.Permission.t -> parameter:int -> Mcperf.Costing.placement
  val parameter_ceiling : Mcperf.Permission.t -> int
end

module Of_placement_rule (R : PLACEMENT_RULE) = struct
  type state = { ctx : Context.t; demand : Workload.Demand.t option }

  let name = R.name
  let heuristic_class = R.heuristic_class
  let init ctx = { ctx; demand = None }
  let observe st (d : delta) = { st with demand = Some d.demand }

  let spec st =
    match st.demand with
    | Some d -> spec_of st.ctx d
    | None -> invalid_arg (R.name ^ ": no workload observed yet")

  let perm st =
    let spec = spec st in
    Mcperf.Permission.compute ?placeable:st.ctx.Context.placeable spec
      heuristic_class

  let parameter_ceiling st = R.parameter_ceiling (perm st)

  let place st = R.place (perm st) ~parameter:st.ctx.Context.parameter

  let assess st =
    let perm = perm st in
    let placement = R.place perm ~parameter:st.ctx.Context.parameter in
    let e = Mcperf.Costing.evaluate perm placement in
    {
      cost = e.Mcperf.Costing.total;
      worst_qos = worst_qos e.Mcperf.Costing.qos;
      meets_goal = e.Mcperf.Costing.meets_goal;
      placement = Some placement;
      detail = Evaluation e;
    }
end

let of_placement_rule (module R : PLACEMENT_RULE) : factory =
 fun ctx ->
  let module M = Of_placement_rule (R) in
  Instance ((module M), M.init ctx)
