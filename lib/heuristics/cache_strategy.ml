let goal_parts (goal : Mcperf.Spec.goal) =
  match goal with
  | Mcperf.Spec.Qos { tlat_ms; fraction } -> (tlat_ms, `Qos fraction)
  | Mcperf.Spec.Avg_latency { tavg_ms } -> (tavg_ms, `Avg tavg_ms)

let meets goal (o : Event_cache.outcome) =
  match goal_parts goal with
  | _, `Qos fraction -> Event_cache.meets_qos o ~fraction
  | _, `Avg tavg ->
    Array.for_all (fun l -> l <= tavg +. 1e-9) o.Event_cache.avg_latency

type config = {
  label : string;
  mode : Event_cache.mode;
  prefetch : bool;
  policy : Policy_cache.kind option;
  write_policy : Event_cache.write_policy option;
  cls : Mcperf.Classes.t;
}

let make (cfg : config) : Strategy.factory =
  let module M = struct
    type state = {
      ctx : Strategy.Context.t;
      trace : Workload.Trace.t option;
      intervals : int;
    }

    let name = cfg.label
    let heuristic_class = cfg.cls
    let init ctx = { ctx; trace = None; intervals = 0 }

    let observe st (d : Strategy.delta) =
      match d.Strategy.trace with
      | None ->
        invalid_arg (cfg.label ^ ": event-level strategy needs a trace")
      | Some _ as trace -> { st with trace; intervals = d.Strategy.intervals }

    let outcome st =
      match st.trace with
      | None -> invalid_arg (cfg.label ^ ": no workload observed yet")
      | Some trace ->
        let ctx = st.ctx in
        let tlat_ms, _ = goal_parts ctx.Strategy.Context.goal in
        Event_cache.simulate ~system:ctx.Strategy.Context.system ~trace
          ~intervals:st.intervals ~costs:ctx.Strategy.Context.costs ~tlat_ms
          ~capacity:ctx.Strategy.Context.parameter ~mode:cfg.mode
          ~prefetch:cfg.prefetch ?placeable:ctx.Strategy.Context.placeable
          ?policy:cfg.policy ?write_policy:cfg.write_policy ()

    let parameter_ceiling st =
      match st.trace with
      | None -> invalid_arg (cfg.label ^ ": no workload observed yet")
      | Some trace -> Workload.Trace.object_count trace

    let place st =
      match (outcome st).Event_cache.placement with
      | Some p -> p
      | None ->
        invalid_arg
          (cfg.label ^ ": placement view needs at most "
          ^ string_of_int Event_cache.placement_interval_limit
          ^ " intervals")

    let assess st =
      let o = outcome st in
      {
        Strategy.cost = o.Event_cache.provisioned_cost;
        worst_qos = Strategy.worst_qos o.Event_cache.qos;
        meets_goal = meets st.ctx.Strategy.Context.goal o;
        placement = o.Event_cache.placement;
        detail = Strategy.Cache_outcome o;
      }
  end in
  fun ctx -> Strategy.Instance ((module M), M.init ctx)

let reactive = Mcperf.Classes.allow_intra_interval_reaction

let lru =
  make
    {
      label = "lru-caching";
      mode = Event_cache.Local;
      prefetch = false;
      policy = None;
      write_policy = None;
      cls = reactive Mcperf.Classes.caching;
    }

let policy kind =
  make
    {
      label = Policy_cache.kind_name kind ^ "-caching";
      mode = Event_cache.Local;
      prefetch = false;
      policy = Some kind;
      write_policy = None;
      cls = reactive Mcperf.Classes.caching;
    }

let cooperative =
  make
    {
      label = "cooperative-caching";
      mode = Event_cache.Cooperative;
      prefetch = false;
      policy = None;
      write_policy = None;
      cls = reactive Mcperf.Classes.cooperative_caching;
    }

let prefetching =
  make
    {
      label = "caching-prefetch";
      mode = Event_cache.Local;
      prefetch = true;
      policy = None;
      write_policy = None;
      cls = reactive Mcperf.Classes.caching_prefetch;
    }

let cooperative_prefetching =
  make
    {
      label = "cooperative-caching-prefetch";
      mode = Event_cache.Cooperative;
      prefetch = true;
      policy = None;
      write_policy = None;
      cls = reactive Mcperf.Classes.cooperative_caching_prefetch;
    }

let hierarchical ?(cluster_radius_ms = 150.) () =
  make
    {
      label = "hierarchical-caching";
      mode = Event_cache.Hierarchical { cluster_radius_ms };
      prefetch = false;
      policy = None;
      write_policy = None;
      cls = reactive Mcperf.Classes.cooperative_caching;
    }
