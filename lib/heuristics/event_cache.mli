(** Event-level simulation of caching heuristics.

    This is the "deployed heuristic" side of Figure 2: caching runs at its
    natural evaluation interval — every single access — rather than the
    coarse interval used for the lower bounds. Three variants:

    - {b local} ([Local], [prefetch = false]): plain per-node LRU; misses
      go to the origin.
    - {b cooperative} ([Cooperative]): a miss is served by the nearest
      node currently caching the object (directory lookup), falling back
      to the origin; the object is then cached locally.
    - {b prefetching} ([prefetch = true]): at each interval boundary every
      node pre-loads the objects it will access during the coming interval
      (most-demanded first, up to capacity) — an oracle stand-in for the
      proactive classes of Table 3.

    Cost accounting mirrors the paper's case study: storage is the
    {e provisioned} capacity on every non-origin site for the full
    execution (α · C · sites · intervals — caching is a uniform
    storage-constrained heuristic), creation is β per cache fill. The
    occupancy-based storage cost is also reported for reference. *)

type mode =
  | Local
  | Cooperative
  | Hierarchical of { cluster_radius_ms : float }
      (** Korupolu–Plaxton–Rajaraman-style hierarchical cooperative
          caching: nodes are grouped into latency balls of the given
          radius; a miss served by a cache {e within the same cluster}
          does not duplicate the object locally (the cluster behaves like
          one shared cache), while objects fetched from outside the
          cluster or the origin are cached locally. Cuts intra-cluster
          redundancy at the price of intra-cluster fetches. *)

(** What a write does to existing cached copies:
    - [Update]: every copy is refreshed in place (one message per copy —
      the paper's update-cost term (12));
    - [Invalidate]: copies are dropped (one invalidation message per
      copy); subsequent reads miss and re-fetch, trading message size for
      extra replica creations. *)
type write_policy = Update | Invalidate

type snapshots
(** End-of-interval cache-content snapshots, bit-packed per
    (node, object, interval). Unlike the MC-PERF placement word this
    representation is bounded by memory, not by the native int width, so
    long traces (any interval count) still record their placements. *)

val held : snapshots -> node:int -> object_id:int -> interval:int -> bool
(** Whether the node held the object when the interval closed. Raises
    [Invalid_argument] on out-of-bounds indices. *)

val placement_interval_limit : int
(** Largest interval count for which the int-bitmask
    {!Mcperf.Costing.placement} view of the snapshots exists (62: the
    costing layer packs interval sets into a native int). *)

type outcome = {
  capacity : int;
  hits_local : int;
  hits_remote : int;  (** served by a peer cache (cooperative only) *)
  misses : int;  (** served by the origin *)
  insertions : int;  (** cache fills = replica creations *)
  qos : float array;  (** per node: fraction of reads served within tlat *)
  avg_latency : float array;  (** per node, ms *)
  provisioned_cost : float;
  occupancy_cost : float;
  write_messages : float;  (** update messages sent to caches (delta > 0) *)
  placement : Mcperf.Costing.placement option;
      (** end-of-interval cache contents as MC-PERF placement bitmasks
          ([placement.(n).(k)] bit [i]: node [n] held object [k] when
          interval [i] closed) — what the availability layer re-prices
          under failure scenarios. [Some] iff the run used at most
          {!placement_interval_limit} intervals; longer traces only have
          the wide {!snapshots} view. *)
  snapshots : snapshots;
      (** the same end-of-interval contents, wide bit-packed — present at
          every interval count; query with {!held} *)
}

val simulate :
  system:Topology.System.t ->
  trace:Workload.Trace.t ->
  intervals:int ->
  costs:Mcperf.Spec.costs ->
  tlat_ms:float ->
  capacity:int ->
  mode:mode ->
  ?prefetch:bool ->
  ?placeable:bool array ->
  ?policy:Policy_cache.kind ->
  ?write_policy:write_policy ->
  unit ->
  outcome
(** Requires at most 62 nodes (the cooperative directory uses bitmask
    holder sets), a positive interval count and [capacity >= 0] — raises
    [Invalid_argument] otherwise. Any positive interval count is
    supported: snapshots are wide bit-packed, and the int-bitmask
    [placement] view is additionally produced when the count is at most
    {!placement_interval_limit}. [placeable] limits which sites run a
    cache (deployment scenario); non-placeable sites forward every access
    and pay no provisioned storage. [policy] selects the replacement
    policy (default [Lru]); all policies belong to the same heuristic
    class and are bounded by the same caching lower bound. *)

val meets_qos : outcome -> fraction:float -> bool
(** Every node's QoS is at least [fraction]. *)
