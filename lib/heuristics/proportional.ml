(* Demand-proportional placement. Site scores are subtree demand on
   trees (accumulated leaf-up over a BFS order from the origin) and local
   demand otherwise; the object split is a largest-remainder rounding of
   the weighted read shares. Everything is deterministic — ties go to the
   lower id — so the validate harness can diff runs byte-for-byte. *)

(* Per-object weighted demand at each node, plus the per-object totals. *)
let weighted_demand spec =
  let demand = spec.Mcperf.Spec.demand in
  let nodes = Mcperf.Spec.node_count spec in
  let objects = Mcperf.Spec.object_count spec in
  let weight = demand.Workload.Demand.weight in
  let per_node = Array.make_matrix objects nodes 0. in
  let totals = Array.make objects 0. in
  Array.iteri
    (fun k kcells ->
      Array.iter
        (fun (c : Workload.Demand.cell) ->
          let w = weight.(k) *. c.count in
          per_node.(k).(c.node) <- per_node.(k).(c.node) +. w;
          totals.(k) <- totals.(k) +. w)
        kcells)
    demand.Workload.Demand.reads;
  (per_node, totals)

(* On a tree rooted at the origin, fold each node's demand into its
   ancestors so a site's score is everything hanging below it. The BFS
   order from the root visits parents before children, so one reverse
   scan accumulates leaf-up. *)
let subtree_scores sys per_node =
  let g = sys.Topology.System.graph in
  let nodes = Topology.Graph.node_count g in
  if not (Topology.Graph.is_tree g) then per_node
  else begin
    let root = sys.Topology.System.origin in
    let parent = Array.make nodes (-1) in
    let order = Array.make nodes root in
    let seen = Array.make nodes false in
    seen.(root) <- true;
    let head = ref 0 and tail = ref 0 in
    order.(!tail) <- root;
    incr tail;
    while !head < !tail do
      let u = order.(!head) in
      incr head;
      List.iter
        (fun (v, _) ->
          if not seen.(v) then begin
            seen.(v) <- true;
            parent.(v) <- u;
            order.(!tail) <- v;
            incr tail
          end)
        (Topology.Graph.neighbors g u)
    done;
    let scores = Array.map Array.copy per_node in
    Array.iter
      (fun row ->
        for i = nodes - 1 downto 1 do
          let v = order.(i) in
          row.(parent.(v)) <- row.(parent.(v)) +. row.(v)
        done)
      scores;
    scores
  end

(* Largest-remainder split of [total] across the demanded objects,
   proportional to [totals]; every demanded object gets at least one when
   the budget covers them all, otherwise the heaviest objects win. *)
let split_budget ~totals ~total =
  let objects = Array.length totals in
  let quota = Array.make objects 0 in
  let demanded =
    Array.to_list (Array.init objects Fun.id)
    |> List.filter (fun k -> totals.(k) > 0.)
  in
  let count = List.length demanded in
  if count = 0 || total <= 0 then quota
  else begin
    let sum = List.fold_left (fun acc k -> acc +. totals.(k)) 0. demanded in
    if total < count then begin
      (* Not enough for one each: heaviest objects first. *)
      let ranked =
        List.sort
          (fun a b ->
            if totals.(a) <> totals.(b) then compare totals.(b) totals.(a)
            else compare a b)
          demanded
      in
      List.iteri (fun i k -> if i < total then quota.(k) <- 1) ranked;
      quota
    end
    else begin
      let spare = total - count in
      let frac = Array.make objects 0. in
      List.iter
        (fun k ->
          let ideal = float_of_int spare *. totals.(k) /. sum in
          quota.(k) <- 1 + int_of_float ideal;
          frac.(k) <- ideal -. Float.of_int (int_of_float ideal))
        demanded;
      let assigned = List.fold_left (fun acc k -> acc + quota.(k)) 0 demanded in
      let ranked =
        List.sort
          (fun a b ->
            if frac.(a) <> frac.(b) then compare frac.(b) frac.(a)
            else compare a b)
          demanded
      in
      List.iteri
        (fun i k -> if i < total - assigned then quota.(k) <- quota.(k) + 1)
        ranked;
      quota
    end
  end

let place ~(perm : Mcperf.Permission.t) ~total_replicas () =
  if total_replicas < 0 then
    invalid_arg "Proportional.place: negative total_replicas";
  let spec = perm.Mcperf.Permission.spec in
  let nodes = Mcperf.Spec.node_count spec in
  let objects = Mcperf.Spec.object_count spec in
  let intervals = Mcperf.Spec.interval_count spec in
  let full_mask = Mcperf.Permission.interval_bits intervals in
  let per_node, totals = weighted_demand spec in
  let scores = subtree_scores spec.Mcperf.Spec.system per_node in
  let quota = split_budget ~totals ~total:total_replicas in
  let candidates =
    Array.init objects (fun k ->
        let sites = ref [] in
        for m = nodes - 1 downto 0 do
          if perm.Mcperf.Permission.store_mask.(m).(k) <> 0 then
            sites := m :: !sites
        done;
        !sites)
  in
  (* The proportional split is blind to how many sites each object may
     actually use, so a quota can overshoot one object's pool while
     another object starves. Clamp each quota to its pool and hand the
     surplus to demanded objects with room left (heaviest first), so the
     cap budget saturates every pool instead of wasting replicas. *)
  let pool = Array.map List.length candidates in
  let surplus = ref 0 in
  Array.iteri
    (fun k q ->
      if q > pool.(k) then begin
        surplus := !surplus + (q - pool.(k));
        quota.(k) <- pool.(k)
      end)
    quota;
  let order =
    Array.to_list (Array.init objects Fun.id)
    |> List.filter (fun k -> totals.(k) > 0.)
    |> List.sort (fun a b ->
           if totals.(a) <> totals.(b) then compare totals.(b) totals.(a)
           else compare a b)
  in
  let progress = ref true in
  while !surplus > 0 && !progress do
    progress := false;
    List.iter
      (fun k ->
        if !surplus > 0 && quota.(k) < pool.(k) then begin
          quota.(k) <- quota.(k) + 1;
          decr surplus;
          progress := true
        end)
      order
  done;
  let placement = Mcperf.Costing.empty_placement spec in
  for k = 0 to objects - 1 do
    if quota.(k) > 0 then begin
      let ranked =
        List.sort
          (fun a b ->
            if scores.(k).(a) <> scores.(k).(b) then
              compare scores.(k).(b) scores.(k).(a)
            else compare a b)
          candidates.(k)
      in
      List.iteri
        (fun i m -> if i < quota.(k) then placement.(m).(k) <- full_mask)
        ranked
    end
  done;
  placement

let evaluate ?placeable ~spec ~total_replicas () =
  let perm =
    Mcperf.Permission.compute ?placeable spec Mcperf.Classes.general
  in
  let placement = place ~perm ~total_replicas () in
  Mcperf.Costing.evaluate perm placement

let budget_ceiling (perm : Mcperf.Permission.t) =
  let spec = perm.Mcperf.Permission.spec in
  let nodes = Mcperf.Spec.node_count spec in
  let objects = Mcperf.Spec.object_count spec in
  let _, totals = weighted_demand spec in
  let sites k =
    let n = ref 0 in
    for m = 0 to nodes - 1 do
      if perm.Mcperf.Permission.store_mask.(m).(k) <> 0 then incr n
    done;
    !n
  in
  let cap = ref 0 in
  for k = 0 to objects - 1 do
    if totals.(k) > 0. then cap := !cap + sites k
  done;
  !cap

let search ?placeable ?max_total ~spec () =
  let perm =
    Mcperf.Permission.compute ?placeable spec Mcperf.Classes.general
  in
  let max_total =
    match max_total with Some m -> m | None -> budget_ceiling perm
  in
  let rec scan total =
    if total > max_total then None
    else
      let placement = place ~perm ~total_replicas:total () in
      let ev = Mcperf.Costing.evaluate perm placement in
      if ev.Mcperf.Costing.meets_goal then Some (total, ev)
      else scan (total + 1)
  in
  (* start at zero: when the origin already covers everything the empty
     placement wins, and no permitted site may even exist *)
  scan 0

let strategy =
  Strategy.of_placement_rule
    (module struct
      let name = "proportional"
      let heuristic_class = Mcperf.Classes.general
      let place perm ~parameter = place ~perm ~total_replicas:parameter ()
      let parameter_ceiling = budget_ceiling
    end)
