(** Catalogue of the built-in strategies, keyed by the names the runner
    and figures have always used (e.g. ["greedy-global"],
    ["lru-caching"]). *)

val builtin : (string * Strategy.factory) list
val find : string -> Strategy.factory option
val names : unit -> string list
