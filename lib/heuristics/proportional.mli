(** Proportional placement: a cheap tree-aware heuristic that splits a
    global replica budget across objects in proportion to their weighted
    read share, then spends each object's quota on the sites whose
    subtrees generate the most demand for it.

    This is the "obvious" CDN rule of thumb — popular objects get more
    replicas, replicas sit above the heaviest demand — and the natural
    comparison point for the exact tree DP ({!Bounds.Tree_dp}): on tree
    instances the validate harness reports its cost alongside the DP
    optimum and the LP/Lagrangian bounds, quantifying how much the rule
    of thumb leaves on the table. On a tree the site score is the full
    weighted demand of the subtree hanging below the site (computed from
    the origin outward); on general graphs it degrades to the site's own
    local demand, i.e. the hotspot score of {!Placement_baselines}.

    Placements store for the whole horizon and are restricted to sites
    with store support, so the heuristic respects its class's
    permissions. *)

val place :
  perm:Mcperf.Permission.t ->
  total_replicas:int ->
  unit ->
  Mcperf.Costing.placement
(** [place ~perm ~total_replicas ()] splits [total_replicas] across the
    objects with demand (largest-remainder rounding of the weighted read
    shares, at least one replica per demanded object when the budget
    allows; with fewer replicas than demanded objects, the heaviest
    objects win) and places each object's quota at its highest-scoring
    permitted sites. A quota exceeding an object's permitted-site pool is
    clamped and the surplus re-dealt to demanded objects with room left,
    heaviest first, so a budget equal to the total pool saturates every
    site. Deterministic: ties break towards lower node and object
    ids. *)

val evaluate :
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  total_replicas:int ->
  unit ->
  Mcperf.Costing.evaluation
(** Place under the unconstrained general class and evaluate. *)

val search :
  ?placeable:bool array ->
  ?max_total:int ->
  spec:Mcperf.Spec.t ->
  unit ->
  (int * Mcperf.Costing.evaluation) option
(** Smallest total budget whose proportional placement meets the spec's
    goal: scan budgets upward from zero (the empty placement wins when
    the origin already covers everything) and return the first
    evaluation with [meets_goal] (with the budget that achieved it), or
    [None] if none does by [max_total] (default: every permitted site of
    every demanded object — beyond that the placement cannot change).
    The scan is monotone in spirit but the split is not strictly nested,
    so this is a heuristic search, not a proof of minimality. *)

val budget_ceiling : Mcperf.Permission.t -> int
(** Every permitted site of every demanded object — the largest budget
    worth scanning (beyond it the placement cannot change). *)

val strategy : Strategy.factory
(** Strategy-object port: context parameter = total replica budget.
    Placements identical to [evaluate] on the observed demand. *)
