(** Strategy-object ports of the event-level caching heuristics.

    The state is the cumulative event trace (caching decides on every
    access, so it consumes the event-level view, not the bucketed
    demand); [assess] replays the {!Event_cache} simulator at the
    context's capacity parameter — the exact entry point the offline
    runner used before the redesign, so verdicts match it bit for
    bit. *)

type config = {
  label : string;
  mode : Event_cache.mode;
  prefetch : bool;
  policy : Policy_cache.kind option;
  write_policy : Event_cache.write_policy option;
  cls : Mcperf.Classes.t;  (** bound class the strategy is compared to *)
}

val make : config -> Strategy.factory
(** Context parameter = per-node cache capacity (objects). *)

val lru : Strategy.factory
(** Plain per-node LRU ({!Lru_cache}); class: reactive caching. *)

val policy : Policy_cache.kind -> Strategy.factory
(** Replacement-policy variants ({!Policy_cache}): lru/fifo/lfu. *)

val cooperative : Strategy.factory
val prefetching : Strategy.factory
val cooperative_prefetching : Strategy.factory
val hierarchical : ?cluster_radius_ms:float -> unit -> Strategy.factory

val meets : Mcperf.Spec.goal -> Event_cache.outcome -> bool
(** Whether the outcome meets the goal (QoS fraction at every node, or
    the average-latency cap) — the runner's feasibility test. *)
