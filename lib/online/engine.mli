(** Epoch-driven online placement service.

    The engine consumes a workload as a stream of continuation chunks
    ({!Workload.Trace.sub} slices with absolute times, one per epoch),
    folds each chunk into an incremental cumulative state
    ({!Workload.Incremental} + {!Workload.Trace.extend}), and per epoch:

    + asks every registered {!Heuristics.Strategy.factory} for its
      minimal goal-meeting deployment over everything observed so far
      (the same minimal-parameter search {!Sim.Runner.deploy} runs
      offline);
    + re-solves one class lower bound per distinct heuristic class
      through a persistent {!Bounds.Pipeline.Online.handle}, warm-started
      from the previous epoch's solution;
    + reports decisions with per-epoch regret — deployed cost minus the
      class bound. PDHG dual bounds are valid at any iterate (weak
      duality), so warm starts change solve time, never validity, and
      regret is nonnegative for every feasible decision.

    Determinism: strategy searches fan out over an order-preserving
    worker pool and the bound solves run sequentially in the parent, so
    the epoch reports are byte-identical at every [jobs]. *)

type config = {
  system : Topology.System.t;
  interval_s : float;  (** evaluation-interval (bucket) width, seconds *)
  epoch_intervals : int;  (** intervals ingested per epoch *)
  costs : Mcperf.Spec.costs;
  goal : Mcperf.Spec.goal;
  placeable : bool array option;  (** deployment restriction, or all nodes *)
  strategies : (string * Heuristics.Strategy.factory) list;
  solver : Bounds.Pipeline.solver;
  warm : bool;  (** warm-start epoch-over-epoch bound re-solves *)
  jobs : int;  (** worker processes for the per-epoch strategy searches *)
}

val default_strategies : (string * Heuristics.Strategy.factory) list
(** One representative per major class: greedy-global, greedy-replica,
    proportional, lru-caching, cooperative-caching. *)

val default :
  ?placeable:bool array ->
  ?costs:Mcperf.Spec.costs ->
  system:Topology.System.t ->
  interval_s:float ->
  epoch_intervals:int ->
  goal:Mcperf.Spec.goal ->
  unit ->
  config
(** Config with {!default_strategies}, [Auto] solver, warm starts on,
    [jobs = 1]. *)

type decision = {
  strategy : string;
  class_name : string;
  parameter : int option;  (** [None]: no parameter meets the goal *)
  cost : float option;  (** deployed (provisioned) cost at [parameter] *)
  worst_qos : float option;
  bound : float option;  (** class lower bound, when the class is feasible *)
  regret : float option;  (** [cost - bound]; [>= 0] whenever present *)
}

type epoch = {
  index : int;
  intervals : int;  (** cumulative intervals after this epoch's chunk *)
  chunk_events : int;
  total_events : int;
  working_set : int;  (** objects read within the last epoch's intervals *)
  bounds : (string * Bounds.Pipeline.t) list;  (** keyed by class name *)
  decisions : decision list;  (** one per configured strategy, in order *)
  search_s : float;  (** wall time of the strategy searches *)
  solve_s : float;  (** wall time of the bound re-solves *)
}

type t
(** A running engine: cumulative workload state plus the warm bound
    handle. *)

val create : config -> t

val feed : t -> Workload.Trace.t -> epoch
(** Ingest one continuation chunk and run the epoch. Epochs whose
    cumulative demand still has zero reads are warm-up epochs: reported
    with no bounds and no decisions. Raises on misaligned chunks (see
    {!Workload.Demand.extend}) and once the cumulative horizon exceeds
    the model's interval limit ({!Mcperf.Spec.make}). *)

val epochs : t -> epoch list
(** All epochs so far, oldest first. *)

val warm_lifts : t -> int
(** Bound re-solves that were primed from a previous epoch's solution. *)

val bound_solves : t -> int

val chunks :
  interval_s:float ->
  epoch_intervals:int ->
  Workload.Trace.t ->
  Workload.Trace.t list
(** Slice a replay trace into per-epoch continuation chunks by bucket
    index, using the same arithmetic as {!Workload.Demand.of_trace} on
    the whole trace — so feeding the chunks reproduces the offline
    demand exactly, for any epoch size. The last chunk may cover fewer
    than [epoch_intervals] intervals. *)

val run : config -> trace:Workload.Trace.t -> t * epoch list
(** [create] + [chunks] + [feed] over the whole stream. *)
