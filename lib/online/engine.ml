type config = {
  system : Topology.System.t;
  interval_s : float;
  epoch_intervals : int;
  costs : Mcperf.Spec.costs;
  goal : Mcperf.Spec.goal;
  placeable : bool array option;
  strategies : (string * Heuristics.Strategy.factory) list;
  solver : Bounds.Pipeline.solver;
  warm : bool;
  jobs : int;
}

let default_strategies =
  [
    ("greedy-global", Heuristics.Greedy_global.strategy);
    ("greedy-replica", Heuristics.Greedy_replica.strategy);
    ("proportional", Heuristics.Proportional.strategy);
    ("lru-caching", Heuristics.Cache_strategy.lru);
    ("cooperative-caching", Heuristics.Cache_strategy.cooperative);
  ]

let default ?placeable ?(costs = Mcperf.Spec.default_costs) ~system ~interval_s
    ~epoch_intervals ~goal () =
  if epoch_intervals <= 0 then
    invalid_arg "Engine.default: epoch_intervals must be positive";
  if interval_s <= 0. then
    invalid_arg "Engine.default: interval_s must be positive";
  {
    system;
    interval_s;
    epoch_intervals;
    costs;
    goal;
    placeable;
    strategies = default_strategies;
    solver = Bounds.Pipeline.Auto;
    warm = true;
    jobs = 1;
  }

type decision = {
  strategy : string;
  class_name : string;
  parameter : int option;  (** [None]: no parameter meets the goal *)
  cost : float option;
  worst_qos : float option;
  bound : float option;
  regret : float option;
}

type epoch = {
  index : int;
  intervals : int;
  chunk_events : int;
  total_events : int;
  working_set : int;
  bounds : (string * Bounds.Pipeline.t) list;
  decisions : decision list;
  search_s : float;
  solve_s : float;
}

type t = {
  config : config;
  handle : Bounds.Pipeline.Online.handle;
  mutable incr : Workload.Incremental.t;
  mutable trace : Workload.Trace.t option;
  mutable deltas : Heuristics.Strategy.delta list;  (** newest first *)
  mutable epochs : epoch list;  (** newest first *)
}

let create config =
  if config.epoch_intervals <= 0 then
    invalid_arg "Engine.create: epoch_intervals must be positive";
  if config.jobs < 1 then invalid_arg "Engine.create: jobs must be >= 1";
  if config.strategies = [] then
    invalid_arg "Engine.create: need at least one strategy";
  {
    config;
    handle =
      Bounds.Pipeline.Online.create ~solver:config.solver
        ?placeable:config.placeable ~warm:config.warm ();
    incr =
      Workload.Incremental.create
        ~nodes:(Topology.System.node_count config.system)
        ~interval_s:config.interval_s;
    trace = None;
    deltas = [];
    epochs = [];
  }

let epochs t = List.rev t.epochs
let warm_lifts t = Bounds.Pipeline.Online.warm_lifts t.handle
let bound_solves t = Bounds.Pipeline.Online.solves t.handle

let m_epochs = lazy (Obs.Metrics.counter "online.epochs")
let m_decisions = lazy (Obs.Metrics.counter "online.decisions")
let m_solves = lazy (Obs.Metrics.counter "online.bound_solves")
let m_regret = lazy (Obs.Metrics.histogram "online.regret")

(* One strategy's minimal-feasible deployment on everything observed so
   far. Pure function of (factory, deltas, ctx): safe to fan out across
   a worker pool, and order-preserving collection keeps the epoch report
   byte-identical at every [jobs]. *)
let search_one (cfg : config) deltas (label, factory) =
  let module S = Heuristics.Strategy in
  let ctx =
    S.Context.make ~system:cfg.system ?placeable:cfg.placeable
      ~costs:cfg.costs ~goal:cfg.goal ()
  in
  let at p =
    List.fold_left S.observe
      (factory (S.Context.with_parameter ctx p))
      (List.rev deltas)
  in
  let class_name =
    (S.heuristic_class (factory ctx)).Mcperf.Classes.name
  in
  let hi = S.parameter_ceiling (at 0) in
  let feasible p = (S.assess (at p)).S.meets_goal in
  match Sim.Search.min_feasible_int ~lo:0 ~hi feasible with
  | None ->
    {
      strategy = label;
      class_name;
      parameter = None;
      cost = None;
      worst_qos = None;
      bound = None;
      regret = None;
    }
  | Some p ->
    let v = S.assess (at p) in
    {
      strategy = label;
      class_name;
      parameter = Some p;
      cost = Some v.S.cost;
      worst_qos = Some v.S.worst_qos;
      bound = None;
      regret = None;
    }

let feed t chunk =
  let cfg = t.config in
  let index = List.length t.epochs in
  let sp =
    Obs.Trace.span_begin "online.epoch"
      ~attrs:
        [
          ("epoch", Obs.Trace.Int index);
          ("events", Obs.Trace.Int (Workload.Trace.length chunk));
        ]
  in
  let finish epoch =
    Obs.Metrics.incr (Lazy.force m_epochs);
    Obs.Metrics.incr ~by:(List.length epoch.decisions)
      (Lazy.force m_decisions);
    t.epochs <- epoch :: t.epochs;
    Obs.Trace.span_end sp
      ~attrs:
        [
          ("intervals", Obs.Trace.Int epoch.intervals);
          ("decisions", Obs.Trace.Int (List.length epoch.decisions));
        ];
    epoch
  in
  match
    let start_interval = Workload.Incremental.intervals t.incr in
    let incr = Workload.Incremental.extend t.incr chunk in
    let trace =
      match t.trace with
      | None -> chunk
      | Some prev -> Workload.Trace.extend prev chunk
    in
    t.incr <- incr;
    t.trace <- Some trace;
    let intervals = Workload.Incremental.intervals incr in
    let delta =
      {
        Heuristics.Strategy.epoch = index;
        start_interval;
        intervals;
        demand = Workload.Incremental.demand incr;
        chunk = Some chunk;
        trace = Some trace;
      }
    in
    (incr, delta)
  with
  | exception e ->
    Obs.Trace.span_end sp ~attrs:[ ("error", Obs.Trace.Bool true) ];
    raise e
  | incr, delta ->
    let intervals = Workload.Incremental.intervals incr in
    let demand = Workload.Incremental.demand incr in
    t.deltas <- delta :: t.deltas;
    let total_events = Workload.Incremental.events incr in
    let working_set =
      Workload.Incremental.working_set incr ~window:cfg.epoch_intervals
    in
    if Workload.Demand.total_reads demand <= 0. then
      (* Nothing to place or bound yet: a warm-up epoch. *)
      finish
        {
          index;
          intervals;
          chunk_events = Workload.Trace.length chunk;
          total_events;
          working_set;
          bounds = [];
          decisions = [];
          search_s = 0.;
          solve_s = 0.;
        }
    else begin
      let spec =
        Mcperf.Spec.make ~system:cfg.system ~demand ~costs:cfg.costs
          ~goal:cfg.goal ()
      in
      let t0 = Unix.gettimeofday () in
      let deltas = t.deltas in
      let searches =
        if cfg.jobs <= 1 then List.map (search_one cfg deltas) cfg.strategies
        else
          Util.Parallel.map_values ~jobs:cfg.jobs
            ~f:(search_one cfg deltas)
            cfg.strategies
      in
      let t1 = Unix.gettimeofday () in
      (* Class bounds re-solve in the parent, warm-started from the
         previous epoch, one per distinct class among the strategies —
         byte-identical at every [jobs] by construction. *)
      let classes =
        List.fold_left
          (fun acc (_, factory) ->
            let cls =
              Heuristics.Strategy.heuristic_class
                (factory
                   (Heuristics.Strategy.Context.make ~system:cfg.system
                      ?placeable:cfg.placeable ~costs:cfg.costs ~goal:cfg.goal
                      ()))
            in
            if List.exists (fun c -> c.Mcperf.Classes.name = cls.Mcperf.Classes.name) acc
            then acc
            else acc @ [ cls ])
          [] cfg.strategies
      in
      let bounds =
        List.map
          (fun cls ->
            let r = Bounds.Pipeline.Online.solve t.handle spec cls in
            Obs.Metrics.incr (Lazy.force m_solves);
            (cls.Mcperf.Classes.name, r))
          classes
      in
      let t2 = Unix.gettimeofday () in
      let decisions =
        List.map
          (fun d ->
            let bound =
              match List.assoc_opt d.class_name bounds with
              | Some (r : Bounds.Pipeline.t) when r.Bounds.Pipeline.feasible ->
                Some r.Bounds.Pipeline.lower_bound
              | Some _ | None -> None
            in
            let regret =
              match (d.cost, bound) with
              | Some c, Some b ->
                let r = c -. b in
                Obs.Metrics.observe (Lazy.force m_regret) r;
                Some r
              | _ -> None
            in
            { d with bound; regret })
          searches
      in
      finish
        {
          index;
          intervals;
          chunk_events = Workload.Trace.length chunk;
          total_events;
          working_set;
          bounds;
          decisions;
          search_s = t1 -. t0;
          solve_s = t2 -. t1;
        }
    end

(* Slice a replay trace into per-epoch continuation chunks: every event
   is bucketed once with the whole-trace arithmetic, so any epoch size
   yields the same cumulative demand — chunking changes when decisions
   happen, never what the workload is. *)
let chunks ~interval_s ~epoch_intervals trace =
  if epoch_intervals <= 0 then
    invalid_arg "Engine.chunks: epoch_intervals must be positive";
  let dur = Workload.Trace.duration_s trace in
  let total = int_of_float (Float.round (dur /. interval_s)) in
  if total <= 0 then invalid_arg "Engine.chunks: trace shorter than interval";
  let n = Workload.Trace.length trace in
  let bucket i =
    min (total - 1)
      (int_of_float (Workload.Trace.time trace i /. interval_s))
  in
  let epoch_count = (total + epoch_intervals - 1) / epoch_intervals in
  let out = ref [] in
  let lo = ref 0 in
  for e = 0 to epoch_count - 1 do
    let last_interval = min total ((e + 1) * epoch_intervals) in
    let hi = ref !lo in
    while !hi < n && bucket !hi < last_interval do
      incr hi
    done;
    let duration_s =
      if e = epoch_count - 1 then dur
      else
        let b = float_of_int last_interval *. interval_s in
        (* Guard against the boundary product rounding below an event
           kept in this chunk (times are strict-below-horizon). *)
        if !hi > !lo then
          Float.max b
            (Float.succ (Workload.Trace.time trace (!hi - 1)))
        else b
    in
    out := Workload.Trace.sub trace ~lo:!lo ~hi:!hi ~duration_s :: !out;
    lo := !hi
  done;
  List.rev !out

let run config ~trace =
  let t = create config in
  let cs =
    chunks ~interval_s:config.interval_s
      ~epoch_intervals:config.epoch_intervals trace
  in
  List.iter (fun c -> ignore (feed t c)) cs;
  (t, epochs t)
