type result =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

type certified =
  | Cert_optimal of { x : float array; objective : float; dual : float array }
  | Cert_infeasible of { ray : float array }
  | Cert_unbounded

let eps = 1e-9
let feas_tol = 1e-7

(* Observability instruments (cached registry lookups). *)
let m_solves = lazy (Obs.Metrics.counter "simplex.solves")
let m_pivots = lazy (Obs.Metrics.counter "simplex.pivots")
let m_infeasible = lazy (Obs.Metrics.counter "simplex.infeasible")
let m_unbounded = lazy (Obs.Metrics.counter "simplex.unbounded")

(* Tableau layout: [tab] has one row per constraint, each of length
   [ncols + 1]; the last entry is the rhs. [basis.(i)] is the variable
   basic in row i. The reduced-cost row is recomputed from scratch at the
   start of each phase and updated by pivots afterwards. *)
type tableau = {
  m : int;
  ncols : int;
  tab : float array array;
  basis : int array;
  reduced : float array;  (* length ncols + 1; last entry = -objective *)
}

let pivot t ~row ~col =
  let piv = t.tab.(row).(col) in
  let w = t.ncols + 1 in
  let r = t.tab.(row) in
  for j = 0 to w - 1 do
    r.(j) <- r.(j) /. piv
  done;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let factor = t.tab.(i).(col) in
      if factor <> 0. then begin
        let ri = t.tab.(i) in
        for j = 0 to w - 1 do
          ri.(j) <- ri.(j) -. (factor *. r.(j))
        done;
        ri.(col) <- 0.
      end
    end
  done;
  let factor = t.reduced.(col) in
  if factor <> 0. then begin
    for j = 0 to w - 1 do
      t.reduced.(j) <- t.reduced.(j) -. (factor *. r.(j))
    done;
    t.reduced.(col) <- 0.
  end;
  t.basis.(row) <- col

let recompute_reduced t cost =
  (* reduced = cost - sum over basic rows of cost(basis) * row *)
  let w = t.ncols + 1 in
  for j = 0 to t.ncols - 1 do
    t.reduced.(j) <- cost.(j)
  done;
  t.reduced.(t.ncols) <- 0.;
  for i = 0 to t.m - 1 do
    let cb = cost.(t.basis.(i)) in
    if cb <> 0. then begin
      let r = t.tab.(i) in
      for j = 0 to w - 1 do
        t.reduced.(j) <- t.reduced.(j) -. (cb *. r.(j))
      done
    end
  done

(* Bland's rule: entering variable is the allowed column with the smallest
   index whose reduced cost is negative; leaving row breaks ratio ties by
   the smallest basic variable index. Returns the verdict together with
   the number of pivots performed (the phase's work, for telemetry). *)
let iterate t ~allowed ~budget =
  let rec step pivots =
    if pivots > budget then failwith "Simplex: pivot budget exceeded";
    let entering = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed.(j) && t.reduced.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then (`Optimal, pivots)
    else begin
      let col = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to t.m - 1 do
        let a = t.tab.(i).(col) in
        if a > eps then begin
          let ratio = t.tab.(i).(t.ncols) /. a in
          if
            ratio < !best_ratio -. eps
            || (ratio < !best_ratio +. eps
               && (!best_row < 0 || t.basis.(i) < t.basis.(!best_row)))
          then begin
            best_ratio := ratio;
            best_row := i
          end
        end
      done;
      if !best_row < 0 then (`Unbounded, pivots)
      else begin
        pivot t ~row:!best_row ~col;
        step (pivots + 1)
      end
    end
  in
  step 0

let solve_certified ?(max_pivots = 100_000) (p : Problem.t) =
  let n = Problem.nvars p in
  Array.iter
    (fun l ->
      if not (Float.is_finite l) then
        invalid_arg "Simplex.solve: all lower bounds must be finite")
    p.lower;
  (* Shift x = z + lower so z >= 0, and collect rows: original constraints
     plus one Le row per finite upper bound. [src] remembers which
     original row a tableau row came from (-1 for the bound rows, whose
     multipliers the certificate re-derives optimally from the box). *)
  let shifted_rows = ref [] in
  Array.iteri
    (fun idx (r : Problem.row) ->
      let shift =
        Array.fold_left (fun acc (j, v) -> acc +. (v *. p.lower.(j))) 0. r.coeffs
      in
      shifted_rows :=
        (r.kind, r.rhs -. shift, Array.to_list r.coeffs, idx) :: !shifted_rows)
    p.rows;
  Array.iteri
    (fun j u ->
      if Float.is_finite u then
        shifted_rows :=
          (Problem.Le, u -. p.lower.(j), [ (j, 1.) ], -1) :: !shifted_rows)
    p.upper;
  let all_rows = List.rev !shifted_rows in
  let m = List.length all_rows in
  (* Count auxiliary columns: slack (Le), surplus (Ge), artificial (Ge with
     positive rhs, Eq always; Le with negative rhs becomes Ge after the
     sign flip below). [flip] records the sign flip so tableau multipliers
     can be mapped back to the original row orientation. *)
  let rows_std =
    List.map
      (fun (kind, rhs, coeffs, src) ->
        if rhs < 0. then
          let flipped = List.map (fun (j, v) -> (j, -.v)) coeffs in
          let kind' =
            match kind with Problem.Le -> Problem.Ge | Ge -> Le | Eq -> Eq
          in
          (kind', -.rhs, flipped, src, -1.)
        else (kind, rhs, coeffs, src, 1.))
      all_rows
  in
  let n_slack =
    List.length
      (List.filter (fun (k, _, _, _, _) -> k <> Problem.Eq) rows_std)
  in
  let n_artificial =
    List.length
      (List.filter
         (fun ((k : Problem.row_kind), _, _, _, _) -> k = Ge || k = Eq)
         rows_std)
  in
  let ncols = n + n_slack + n_artificial in
  let tab = Array.make_matrix m (ncols + 1) 0. in
  let basis = Array.make m 0 in
  let row_kind = Array.make m Problem.Eq in
  let row_src = Array.make m (-1) in
  let row_flip = Array.make m 1. in
  (* The auxiliary column whose reduced cost carries row i's simplex
     multiplier: the slack (Le), the surplus (Ge) or the artificial (Eq). *)
  let row_dual_col = Array.make m 0 in
  let slack_cursor = ref n in
  let art_cursor = ref (n + n_slack) in
  List.iteri
    (fun i (kind, rhs, coeffs, src, flip) ->
      row_kind.(i) <- kind;
      row_src.(i) <- src;
      row_flip.(i) <- flip;
      List.iter (fun (j, v) -> tab.(i).(j) <- tab.(i).(j) +. v) coeffs;
      tab.(i).(ncols) <- rhs;
      (match kind with
      | Problem.Le ->
        let s = !slack_cursor in
        incr slack_cursor;
        tab.(i).(s) <- 1.;
        basis.(i) <- s;
        row_dual_col.(i) <- s
      | Problem.Ge ->
        let s = !slack_cursor in
        incr slack_cursor;
        tab.(i).(s) <- -1.;
        row_dual_col.(i) <- s;
        let a = !art_cursor in
        incr art_cursor;
        tab.(i).(a) <- 1.;
        basis.(i) <- a
      | Problem.Eq ->
        let a = !art_cursor in
        incr art_cursor;
        tab.(i).(a) <- 1.;
        basis.(i) <- a;
        row_dual_col.(i) <- a))
    rows_std;
  let t = { m; ncols; tab; basis; reduced = Array.make (ncols + 1) 0. } in
  (* Read the simplex multipliers for the original rows out of the current
     reduced-cost row and express them against the Ge-normalized problem.
     With duals y = c_B B^-1, a column with coefficient +-e_i and cost c
     has reduced cost c -+ y_i: slack (+e_i, cost 0) gives y_i =
     -reduced, surplus (-e_i, cost 0) gives y_i = +reduced, artificial
     (+e_i, cost [art_cost]) gives y_i = art_cost - reduced. [flip] undoes
     the rhs<0 sign flip; the final map negates multipliers of original
     Le rows because {!Problem.normalize_ge} negates those rows. *)
  let multipliers ~art_cost =
    let v = Array.make (Array.length p.rows) 0. in
    for i = 0 to m - 1 do
      let src = row_src.(i) in
      if src >= 0 then begin
        let w =
          match row_kind.(i) with
          | Problem.Le -> -.t.reduced.(row_dual_col.(i))
          | Problem.Ge -> t.reduced.(row_dual_col.(i))
          | Problem.Eq -> art_cost -. t.reduced.(row_dual_col.(i))
        in
        v.(src) <- v.(src) +. (row_flip.(i) *. w)
      end
    done;
    Array.mapi
      (fun i vi ->
        match p.rows.(i).kind with
        | Problem.Le -> -.vi
        | Problem.Ge | Problem.Eq -> vi)
      v
  in
  (* Phase 1: minimize the sum of artificials. *)
  let phase1_cost = Array.make ncols 0. in
  for j = n + n_slack to ncols - 1 do
    phase1_cost.(j) <- 1.
  done;
  let sp =
    Obs.Trace.span_begin "simplex.solve"
      ~attrs:[ ("rows", Obs.Trace.Int m); ("cols", Obs.Trace.Int ncols) ]
  in
  Obs.Metrics.incr (Lazy.force m_solves);
  let finish ?(attrs = []) ~pivots verdict =
    Obs.Metrics.incr ~by:pivots (Lazy.force m_pivots);
    Obs.Trace.span_end sp
      ~attrs:
        ((("verdict", Obs.Trace.Str verdict)
          :: ("pivots", Obs.Trace.Int pivots) :: attrs))
  in
  recompute_reduced t phase1_cost;
  let allowed_all = Array.make ncols true in
  let p1_pivots =
    match iterate t ~allowed:allowed_all ~budget:max_pivots with
    | `Unbounded, _ ->
      assert false (* phase-1 objective is bounded below by 0 *)
    | `Optimal, pivots -> pivots
  in
  if Obs.Config.tracing () then
    Obs.Trace.event "simplex.phase1_done"
      ~attrs:[ ("pivots", Obs.Trace.Int p1_pivots) ];
  let phase1_obj = -.t.reduced.(ncols) in
  if phase1_obj > feas_tol then begin
    (* The optimal phase-1 duals aggregate the rows into a constraint no
       point in the box satisfies: a Farkas certificate. *)
    Obs.Metrics.incr (Lazy.force m_infeasible);
    finish ~pivots:p1_pivots "infeasible";
    Cert_infeasible { ray = multipliers ~art_cost:1. }
  end
  else begin
    (* Drive remaining artificials out of the basis where possible. *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= n + n_slack then begin
        let found = ref (-1) in
        (try
           for j = 0 to n + n_slack - 1 do
             if Float.abs t.tab.(i).(j) > eps then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then pivot t ~row:i ~col:!found
        (* else: the row is redundant; the artificial stays basic at
           value ~0, which is harmless once its column is disallowed. *)
      end
    done;
    (* Phase 2: original objective on shifted variables. *)
    let phase2_cost = Array.make ncols 0. in
    for j = 0 to n - 1 do
      phase2_cost.(j) <- p.objective.(j)
    done;
    recompute_reduced t phase2_cost;
    if Obs.Config.tracing () then Obs.Trace.event "simplex.phase2_start";
    let allowed = Array.init ncols (fun j -> j < n + n_slack) in
    match iterate t ~allowed ~budget:max_pivots with
    | `Unbounded, p2_pivots ->
      Obs.Metrics.incr (Lazy.force m_unbounded);
      finish ~pivots:(p1_pivots + p2_pivots) "unbounded";
      Cert_unbounded
    | `Optimal, p2_pivots ->
      let z = Array.make n 0. in
      for i = 0 to m - 1 do
        if t.basis.(i) < n then z.(t.basis.(i)) <- t.tab.(i).(ncols)
      done;
      let x = Array.mapi (fun j zj -> zj +. p.lower.(j)) z in
      let objective = Problem.objective_value p x in
      finish
        ~pivots:(p1_pivots + p2_pivots)
        ~attrs:[ ("objective", Obs.Trace.Float objective) ]
        "optimal";
      Cert_optimal { x; objective; dual = multipliers ~art_cost:0. }
  end

let solve ?max_pivots p =
  match solve_certified ?max_pivots p with
  | Cert_optimal { x; objective; dual = _ } -> Optimal { x; objective }
  | Cert_infeasible _ -> Infeasible
  | Cert_unbounded -> Unbounded
