type t = {
  nrows : int;
  ncols : int;
  (* CSR image *)
  row_ptr : int array;  (* length nrows + 1 *)
  col_idx : int array;
  values : float array;
  (* CSC image (transpose in CSR layout) *)
  colt_ptr : int array;  (* length ncols + 1 *)
  rowt_idx : int array;
  valuest : float array;
}

let rows t = t.nrows
let cols t = t.ncols
let nnz t = Array.length t.values

(* Construction is a chain of counting sorts — no hashing, no polymorphic
   comparison, every pass linear in the number of entries:

   1. one validating pass over the input lists counts entries per column;
   2. a scatter pass lays the entries out column-major (CSC); scanning the
      rows in order makes row indices ascending within each column;
   3. a counting transpose back to row-major leaves each row's columns
      sorted, so duplicates sit adjacent and are merged in place (entries
      summing to zero are dropped, as before);
   4. the final CSC image for [mul_t] is a counting transpose of the
      compacted CSR. *)
let of_row_list ~rows ~cols per_row =
  if Array.length per_row <> rows then
    invalid_arg "Sparse.of_row_list: row array length mismatch";
  let col_count = Array.make (cols + 1) 0 in
  let total = ref 0 in
  Array.iter
    (fun entries ->
      List.iter
        (fun (j, v) ->
          if j < 0 || j >= cols then
            invalid_arg "Sparse.of_row_list: column index out of range";
          if not (Float.is_finite v) then
            invalid_arg
              "Sparse.of_row_list: non-finite coefficient (NaN or infinity)";
          col_count.(j + 1) <- col_count.(j + 1) + 1;
          incr total)
        entries)
    per_row;
  let total = !total in
  for j = 1 to cols do
    col_count.(j) <- col_count.(j) + col_count.(j - 1)
  done;
  (* Scatter into column-major order (rows ascending within a column). *)
  let cur = Array.copy col_count in
  let by_col_row = Array.make total 0 in
  let by_col_val = Array.make total 0. in
  Array.iteri
    (fun i entries ->
      List.iter
        (fun (j, v) ->
          let p = Array.unsafe_get cur j in
          Array.unsafe_set by_col_row p i;
          Array.unsafe_set by_col_val p v;
          Array.unsafe_set cur j (p + 1))
        entries)
    per_row;
  (* Transpose back to row-major: columns ascending within each row. *)
  let row_count = Array.make (rows + 1) 0 in
  for p = 0 to total - 1 do
    let i = Array.unsafe_get by_col_row p in
    row_count.(i + 1) <- row_count.(i + 1) + 1
  done;
  for i = 1 to rows do
    row_count.(i) <- row_count.(i) + row_count.(i - 1)
  done;
  let rcur = Array.copy row_count in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0. in
  for j = 0 to cols - 1 do
    for p = col_count.(j) to col_count.(j + 1) - 1 do
      let i = Array.unsafe_get by_col_row p in
      let q = Array.unsafe_get rcur i in
      Array.unsafe_set col_idx q j;
      Array.unsafe_set values q (Array.unsafe_get by_col_val p);
      Array.unsafe_set rcur i (q + 1)
    done
  done;
  (* Merge adjacent duplicates and drop zero sums, compacting in place. *)
  let row_ptr = Array.make (rows + 1) 0 in
  let w = ref 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i) <- !w;
    let p = ref row_count.(i) in
    let stop = row_count.(i + 1) in
    while !p < stop do
      let j = Array.unsafe_get col_idx !p in
      let acc = ref (Array.unsafe_get values !p) in
      incr p;
      while !p < stop && Array.unsafe_get col_idx !p = j do
        acc := !acc +. Array.unsafe_get values !p;
        incr p
      done;
      if !acc <> 0. then begin
        Array.unsafe_set col_idx !w j;
        Array.unsafe_set values !w !acc;
        incr w
      end
    done
  done;
  row_ptr.(rows) <- !w;
  let kept = !w in
  let col_idx = Array.sub col_idx 0 kept in
  let values = Array.sub values 0 kept in
  (* Final transpose image for [mul_t]. *)
  let colt_ptr = Array.make (cols + 1) 0 in
  Array.iter (fun j -> colt_ptr.(j + 1) <- colt_ptr.(j + 1) + 1) col_idx;
  for j = 1 to cols do
    colt_ptr.(j) <- colt_ptr.(j) + colt_ptr.(j - 1)
  done;
  let rowt_idx = Array.make kept 0 in
  let valuest = Array.make kept 0. in
  let cursor = Array.copy colt_ptr in
  for i = 0 to rows - 1 do
    for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      let j = Array.unsafe_get col_idx p in
      let q = Array.unsafe_get cursor j in
      Array.unsafe_set rowt_idx q i;
      Array.unsafe_set valuest q (Array.unsafe_get values p);
      Array.unsafe_set cursor j (q + 1)
    done
  done;
  { nrows = rows; ncols = cols; row_ptr; col_idx; values;
    colt_ptr; rowt_idx; valuest }

(* The matvec kernels carry the whole PDHG iteration; indices are
   internally consistent by construction, so after the one dimension check
   the loops run unchecked. *)

let mul t x y =
  if Array.length x <> t.ncols || Array.length y <> t.nrows then
    invalid_arg "Sparse.mul: dimension mismatch";
  let row_ptr = t.row_ptr and col_idx = t.col_idx and values = t.values in
  for i = 0 to t.nrows - 1 do
    let acc = ref 0. in
    for p = Array.unsafe_get row_ptr i to Array.unsafe_get row_ptr (i + 1) - 1
    do
      acc :=
        !acc
        +. (Array.unsafe_get values p
            *. Array.unsafe_get x (Array.unsafe_get col_idx p))
    done;
    Array.unsafe_set y i !acc
  done

let mul_t t x y =
  if Array.length x <> t.nrows || Array.length y <> t.ncols then
    invalid_arg "Sparse.mul_t: dimension mismatch";
  let colt_ptr = t.colt_ptr and rowt_idx = t.rowt_idx and valuest = t.valuest in
  for j = 0 to t.ncols - 1 do
    let acc = ref 0. in
    for p = Array.unsafe_get colt_ptr j to Array.unsafe_get colt_ptr (j + 1) - 1
    do
      acc :=
        !acc
        +. (Array.unsafe_get valuest p
            *. Array.unsafe_get x (Array.unsafe_get rowt_idx p))
    done;
    Array.unsafe_set y j !acc
  done

let row t i =
  if i < 0 || i >= t.nrows then invalid_arg "Sparse.row: index out of range";
  Array.init
    (t.row_ptr.(i + 1) - t.row_ptr.(i))
    (fun k ->
      let p = t.row_ptr.(i) + k in
      (t.col_idx.(p), t.values.(p)))

let iter_row t i f =
  if i < 0 || i >= t.nrows then invalid_arg "Sparse.iter_row: index out of range";
  for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(p) t.values.(p)
  done

let row_abs_sums t =
  Array.init t.nrows (fun i ->
      let acc = ref 0. in
      for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. Float.abs t.values.(p)
      done;
      !acc)

let col_abs_sums t =
  let sums = Array.make t.ncols 0. in
  Array.iteri
    (fun p j -> sums.(j) <- sums.(j) +. Float.abs t.values.(p))
    t.col_idx;
  sums
