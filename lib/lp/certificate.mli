(** Certified lower bounds from (possibly non-optimal) dual vectors.

    For the minimization problem in [Ge]/[Eq]-normalized form

        min c.x   s.t.  A x >= b (rows Ge), A x = b (rows Eq),
                        l <= x <= u,

    weak duality gives, for ANY multiplier vector [y] with [y_i >= 0] on
    the Ge rows (free on Eq rows):

        opt >= b.y + sum_j min(r_j * l_j, r_j * u_j)
        where r = c - A^T y.

    This holds regardless of how [y] was produced, so a truncated PDHG run
    still yields a mathematically valid lower bound — the property the
    paper's methodology needs from its LP relaxations. The bound degrades
    gracefully with dual suboptimality. If some variable has [u_j =
    infinity] and [r_j < 0], the bound is [neg_infinity]; the MC-PERF
    builder therefore gives every variable a finite upper bound. *)

val dual_bound : Problem.t -> y:float array -> float
(** [dual_bound p ~y] computes the bound above. The problem must be in
    normalized form ({!Problem.normalize_ge}); [Le] rows are rejected.
    Negative entries of [y] on Ge rows are clamped to 0 (which preserves
    validity), so any real vector is accepted. *)

val dual_bound_parts :
  Problem.t -> y:float array -> float * float array
(** Bound together with the reduced-cost vector [r] (useful for tests and
    diagnostics). *)

(** {2 Farkas infeasibility certificates}

    Dropping the objective from the weak-duality bound turns a dual
    vector into an infeasibility test: for any [ray] with [ray_i >= 0] on
    Ge rows (free on Eq rows), the {e margin}

        margin(ray) = b.ray - sup over the box of (A^T ray).x

    satisfies [margin <= 0] whenever the problem has a feasible point
    (plug the point into the supremum). A strictly positive margin is
    therefore a self-contained proof of infeasibility — a Farkas
    certificate — checkable by pure arithmetic, independent of whichever
    solver produced the ray. *)

val farkas_margin : Problem.t -> ray:float array -> float
(** The margin above. The problem must be Ge-normalized; negative Ge
    entries of [ray] are clamped to 0 (preserving the guarantee). *)

val check_farkas : ?tol:float -> Problem.t -> ray:float array -> bool
(** [check_farkas p ~ray] accepts iff [ray] has the right dimension, is
    everywhere finite, and its margin strictly exceeds
    [tol * (1 + sum_i |ray_i * b_i|)] (default [tol = 1e-9]) — i.e. the
    infeasibility proof survives a conservative rounding-error allowance.
    Never raises: malformed input is simply rejected. *)

val row_farkas : ?tol:float -> Problem.t -> float array option
(** Cheap single-row certificate scan: the first row whose left-hand side
    cannot reach its rhs anywhere in the variable box yields a unit ray
    (negated for an Eq row violated from above). This covers the MC-PERF
    infeasibility pattern — a QoS row asking for more coverage than the
    box allows — without running any solver. The returned ray always
    passes {!check_farkas}. *)
