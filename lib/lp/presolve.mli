(** LP presolve: cheap problem reductions applied before the solvers.

    MC-PERF models carry easy slack — variables fixed by their bounds
    (e.g. create variables forced to 0 by the permission constraints),
    singleton rows that are really bounds, empty rows, and variables that
    appear in no constraint. Removing them shrinks the first-order
    solver's working set and tightens its preconditioners.

    Soundness: the reduced problem has the same optimal value minus
    [offset]; [restore] lifts any reduced-feasible point to an
    original-feasible point with objective increased by exactly [offset].
    A lower bound for the reduced problem plus [offset] is therefore a
    valid lower bound for the original. *)

type result = {
  reduced : Problem.t;
  offset : float;
      (** objective contribution of eliminated variables at their fixed
          values *)
  restore : float array -> float array;
      (** lift a reduced solution vector back to the original space *)
  var_map : int array;
      (** original variable index -> reduced index, or [-1] when the
          variable was eliminated (the identity when nothing changed) *)
  status : [ `Reduced | `Infeasible | `Unchanged ];
  fixed_vars : int;  (** variables eliminated *)
  dropped_rows : int;  (** rows eliminated *)
}

val run : ?max_passes:int -> ?fix_unreferenced_vars:bool -> Problem.t -> result
(** [run p] applies, to fixpoint (at most [max_passes], default 10):

    - bound-fixed variables ([lo = hi]) are substituted out;
    - empty rows are checked and dropped (or the problem is declared
      [`Infeasible]);
    - singleton rows become variable-bound tightenings (which may fix more
      variables, or expose infeasibility when bounds cross);
    - variables outside every row are fixed at whichever finite bound
      minimizes the objective (requires the bound on that side to be
      finite; otherwise the variable is kept).

    Rows whose coefficients all vanish after substitution are validated
    against their rhs like empty rows.

    [fix_unreferenced_vars] (default [true]) controls the last rule — the
    only one that inspects the objective. With it disabled the reduction
    is valid for {e any} objective over the same constraint structure,
    which lets callers that rewrite objective coefficients in place
    between solves (the Lagrangian pricing loop) presolve once and reuse
    the reduction; the per-objective offset of the eliminated variables is
    [dot objective (restore zeros)]. *)
