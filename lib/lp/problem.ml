type row_kind = Ge | Le | Eq

type row = {
  kind : row_kind;
  rhs : float;
  coeffs : (int * float) array;
}

type t = {
  nvars : int;
  objective : float array;
  lower : float array;
  upper : float array;
  rows : row array;
  names : string array;
}

module Builder = struct
  type buf = {
    mutable objs : float list;
    mutable lowers : float list;
    mutable uppers : float list;
    mutable buf_names : string list;
    mutable nvars : int;
    mutable brows : row list;
    mutable nrows : int;
  }

  type t = buf

  let create () =
    {
      objs = [];
      lowers = [];
      uppers = [];
      buf_names = [];
      nvars = 0;
      brows = [];
      nrows = 0;
    }

  let add_var b ?(name = "") ?(lo = 0.) ?(hi = infinity) ~obj () =
    if lo > hi then invalid_arg "Lp.Builder.add_var: lo > hi";
    b.objs <- obj :: b.objs;
    b.lowers <- lo :: b.lowers;
    b.uppers <- hi :: b.uppers;
    b.buf_names <- name :: b.buf_names;
    let idx = b.nvars in
    b.nvars <- b.nvars + 1;
    idx

  (* Fast path: model builders overwhelmingly emit rows whose term lists
     are already strictly monotone in the variable index with nonzero
     coefficients (ascending or descending — prepending while scanning
     nodes in order yields descending lists). Such a list has no
     duplicates to combine and nothing to drop, so the sorted coefficient
     array is just the list (reversed if descending) — no hashtable, no
     comparison sort. Anything else falls back to the general
     combine-and-sort path with identical semantics. *)
  let strictly_monotone terms =
    let rec check dir prev = function
      | [] -> dir
      | (j, v) :: tl ->
        if v = 0. then 0
        else begin
          let d = if j > prev then 1 else if j < prev then -1 else 0 in
          if d = 0 then 0
          else if dir = 0 || dir = d then check d j tl
          else 0
        end
    in
    match terms with
    | [] -> 1
    | (_, v) :: _ when v = 0. -> 0
    | [ _ ] -> 1
    | (j, _) :: tl -> check 0 j tl

  let add_row b kind ~rhs terms =
    List.iter
      (fun (j, _) ->
        if j < 0 || j >= b.nvars then
          invalid_arg "Lp.Builder.add_row: unknown variable index")
      terms;
    let coeffs =
      match strictly_monotone terms with
      | 1 -> Array.of_list terms
      | -1 ->
        let a = Array.of_list terms in
        let n = Array.length a in
        Array.init n (fun i -> a.(n - 1 - i))
      | _ ->
        let tbl = Hashtbl.create (List.length terms) in
        List.iter
          (fun (j, v) ->
            let prev = Option.value (Hashtbl.find_opt tbl j) ~default:0. in
            Hashtbl.replace tbl j (prev +. v))
          terms;
        let combined =
          Hashtbl.fold
            (fun j v acc -> if v <> 0. then (j, v) :: acc else acc)
            tbl []
          |> Array.of_list
        in
        Array.sort (fun (a, _) (b, _) -> compare a b) combined;
        combined
    in
    b.brows <- { kind; rhs; coeffs } :: b.brows;
    b.nrows <- b.nrows + 1

  let var_count b = b.nvars
  let row_count b = b.nrows

  let build b =
    {
      nvars = b.nvars;
      objective = Array.of_list (List.rev b.objs);
      lower = Array.of_list (List.rev b.lowers);
      upper = Array.of_list (List.rev b.uppers);
      rows = Array.of_list (List.rev b.brows);
      names = Array.of_list (List.rev b.buf_names);
    }
end

let nvars t = t.nvars
let nrows t = Array.length t.rows

let nnz t =
  Array.fold_left (fun acc r -> acc + Array.length r.coeffs) 0 t.rows

let objective_value t x =
  if Array.length x <> t.nvars then
    invalid_arg "Lp.objective_value: dimension mismatch";
  Util.Vecops.dot t.objective x

let row_activity row x =
  Array.fold_left (fun acc (j, v) -> acc +. (v *. x.(j))) 0. row.coeffs

let max_violation t x =
  if Array.length x <> t.nvars then
    invalid_arg "Lp.max_violation: dimension mismatch";
  let worst = ref 0. in
  let note v = if v > !worst then worst := v in
  Array.iteri
    (fun j xj ->
      note (t.lower.(j) -. xj);
      if Float.is_finite t.upper.(j) then note (xj -. t.upper.(j)))
    x;
  Array.iter
    (fun r ->
      let a = row_activity r x in
      match r.kind with
      | Ge -> note (r.rhs -. a)
      | Le -> note (a -. r.rhs)
      | Eq -> note (Float.abs (a -. r.rhs)))
    t.rows;
  !worst

let with_var_bounds t j ~lo ~hi =
  if j < 0 || j >= t.nvars then
    invalid_arg "Lp.with_var_bounds: index out of range";
  if lo > hi then invalid_arg "Lp.with_var_bounds: lo > hi";
  let lower = Array.copy t.lower and upper = Array.copy t.upper in
  lower.(j) <- lo;
  upper.(j) <- hi;
  { t with lower; upper }

let with_rhs t updates =
  let nrows = Array.length t.rows in
  let rows = Array.copy t.rows in
  List.iter
    (fun (i, rhs) ->
      if i < 0 || i >= nrows then
        invalid_arg "Lp.with_rhs: row index out of range";
      rows.(i) <- { (rows.(i)) with rhs })
    updates;
  { t with rows }

let normalize_ge t =
  let flip r =
    match r.kind with
    | Ge | Eq -> r
    | Le ->
      {
        kind = Ge;
        rhs = -.r.rhs;
        coeffs = Array.map (fun (j, v) -> (j, -.v)) r.coeffs;
      }
  in
  { t with rows = Array.map flip t.rows }

let constraint_matrix t =
  let per_row =
    Array.map (fun r -> Array.to_list r.coeffs) t.rows
  in
  Sparse.of_row_list ~rows:(Array.length t.rows) ~cols:t.nvars per_row

let rhs_vector t = Array.map (fun r -> r.rhs) t.rows

let var_name t j =
  if j < 0 || j >= t.nvars then invalid_arg "Lp.var_name: index out of range";
  if t.names.(j) = "" then Printf.sprintf "x%d" j else t.names.(j)

let pp ppf t =
  let pp_term first ppf (j, v) =
    if v >= 0. && not first then Format.fprintf ppf " + %g %s" v (var_name t j)
    else if v >= 0. then Format.fprintf ppf "%g %s" v (var_name t j)
    else Format.fprintf ppf " - %g %s" (Float.abs v) (var_name t j)
  in
  let pp_terms ppf coeffs =
    Array.iteri (fun i term -> pp_term (i = 0) ppf term) coeffs
  in
  Format.fprintf ppf "@[<v>minimize ";
  let obj_terms =
    Array.to_list (Array.mapi (fun j v -> (j, v)) t.objective)
    |> List.filter (fun (_, v) -> v <> 0.)
    |> Array.of_list
  in
  pp_terms ppf obj_terms;
  Format.fprintf ppf "@,subject to";
  Array.iter
    (fun r ->
      let op = match r.kind with Ge -> ">=" | Le -> "<=" | Eq -> "=" in
      Format.fprintf ppf "@,  %a %s %g" pp_terms r.coeffs op r.rhs)
    t.rows;
  Format.fprintf ppf "@,bounds";
  Array.iteri
    (fun j _ ->
      Format.fprintf ppf "@,  %g <= %s <= %g" t.lower.(j) (var_name t j)
        t.upper.(j))
    t.objective;
  Format.fprintf ppf "@]"
