(** Linear programs in general computational form.

        minimize    c . x
        subject to  a_i . x  {>=, <=, =}  b_i      for each row i
                    l_j <= x_j <= u_j              for each variable j

    This is the interchange type between the MC-PERF model builder and the
    two solvers (exact dense simplex, first-order PDHG). Variables carry
    optional names for debugging small models. *)

type row_kind = Ge | Le | Eq

type row = {
  kind : row_kind;
  rhs : float;
  coeffs : (int * float) array;  (** sorted by variable index, unique *)
}

type t = private {
  nvars : int;
  objective : float array;
  lower : float array;
  upper : float array;  (** may be [infinity] *)
  rows : row array;
  names : string array;  (** "" when unnamed *)
}

(** Incremental construction. *)
module Builder : sig
  type problem := t
  type t

  val create : unit -> t

  val add_var : t -> ?name:string -> ?lo:float -> ?hi:float -> obj:float -> unit -> int
  (** Returns the new variable's index. Defaults: [lo = 0.], [hi = infinity].
      Requires [lo <= hi]. *)

  val add_row : t -> row_kind -> rhs:float -> (int * float) list -> unit
  (** Terms may repeat a variable (coefficients are summed). All variable
      indices must already exist. *)

  val var_count : t -> int
  val row_count : t -> int

  val build : t -> problem
end

val nvars : t -> int
val nrows : t -> int
val nnz : t -> int

val objective_value : t -> float array -> float

val max_violation : t -> float array -> float
(** Largest constraint or bound violation of a point (0. if feasible). *)

val with_var_bounds : t -> int -> lo:float -> hi:float -> t
(** Functional update of one variable's box bounds (rows and objective are
    shared with the original). Used by the branch-and-bound solver. *)

val with_rhs : t -> (int * float) list -> t
(** [with_rhs t updates] replaces the rhs of the listed rows (functional
    update; every untouched row — and every coefficient array — is shared
    with the original, so {!Pdhg.prepare}'s matrix reuse applies to the
    result). Used by the incremental QoS-sweep models, where only the
    T_qos rows change between cells. *)

val normalize_ge : t -> t
(** Rewrite every [Le] row as a [Ge] row (negating coefficients and rhs).
    [Eq] rows are kept. The solvers and the dual certificate assume this
    form. Idempotent. *)

val constraint_matrix : t -> Sparse.t
(** Rows-by-vars sparse matrix of the row coefficients. *)

val rhs_vector : t -> float array

val var_name : t -> int -> string
(** The given name, or ["x<i>"] when unnamed. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering; intended for small debug instances. *)
