(** Exact dense two-phase simplex.

    Solves small LP instances to optimality; used for validation-sized
    MC-PERF models, as the relaxation engine inside the branch-and-bound IP
    solver, and as the ground-truth oracle in the test suite. Bland's rule
    is used throughout, so the method terminates on degenerate instances
    (set-cover relaxations are heavily degenerate).

    Dense tableau: O((rows + bounded vars)^2 * vars) memory and work per
    pivot — intended for problems with at most a few hundred rows and
    variables. Large instances go to {!Pdhg}. *)

type result =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

val solve : ?max_pivots:int -> Problem.t -> result
(** [solve p] requires every variable to have a finite lower bound (upper
    bounds may be infinite). [max_pivots] defaults to [100_000]; raises
    [Failure] if exceeded, which indicates a bug rather than a hard
    instance at the intended scale. *)

(** Like {!result}, but every terminal verdict ships its witness:

    - [Cert_optimal.dual] are the simplex multipliers of the original
      rows, mapped onto {!Problem.normalize_ge}[ p] — feeding them to
      {!Certificate.dual_bound} on that normalized problem reproduces
      [objective] (up to rounding). Bound-row multipliers are omitted:
      the certificate evaluator re-derives them optimally from the box,
      which preserves both validity and tightness.
    - [Cert_infeasible.ray] is the optimal phase-1 dual vector restricted
      to the original rows, a Farkas ray on the normalized problem
      accepted by {!Certificate.check_farkas}. *)
type certified =
  | Cert_optimal of { x : float array; objective : float; dual : float array }
  | Cert_infeasible of { ray : float array }
  | Cert_unbounded

val solve_certified : ?max_pivots:int -> Problem.t -> certified
(** {!solve} with certificates; identical pivot sequence, so the primal
    answers are bit-identical to {!solve}'s. *)
