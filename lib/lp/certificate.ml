(* Shared evaluator for weak-duality bounds: with the problem's own
   objective it is the classic dual bound; with a zero objective it is the
   Farkas margin of an infeasibility ray (see the .mli). *)
let bound_with_objective (p : Problem.t) ~objective ~y =
  let m = Problem.nrows p in
  if Array.length y <> m then
    invalid_arg "Certificate.dual_bound: dual dimension mismatch";
  let y_feas =
    Array.mapi
      (fun i yi ->
        match p.rows.(i).kind with
        | Problem.Ge -> Float.max 0. yi
        | Problem.Eq -> yi
        | Problem.Le ->
          invalid_arg "Certificate.dual_bound: problem must be Ge-normalized")
      y
  in
  let r = Array.copy objective in
  Array.iteri
    (fun i (row : Problem.row) ->
      let yi = y_feas.(i) in
      if yi <> 0. then
        Array.iter (fun (j, v) -> r.(j) <- r.(j) -. (yi *. v)) row.coeffs)
    p.rows;
  let bound = ref 0. in
  Array.iteri (fun i (row : Problem.row) -> bound := !bound +. (y_feas.(i) *. row.rhs)) p.rows;
  (try
     for j = 0 to Problem.nvars p - 1 do
       let lo = p.lower.(j) and hi = p.upper.(j) in
       let contrib =
         if r.(j) >= 0. then r.(j) *. lo
         else if Float.is_finite hi then r.(j) *. hi
         else raise Exit
       in
       bound := !bound +. contrib
     done
   with Exit -> bound := neg_infinity);
  (!bound, r)

let dual_bound_parts (p : Problem.t) ~y =
  bound_with_objective p ~objective:p.objective ~y

let dual_bound p ~y = fst (dual_bound_parts p ~y)

(* --- Farkas infeasibility certificates ----------------------------------- *)

let farkas_margin (p : Problem.t) ~ray =
  let zero = Array.make (Problem.nvars p) 0. in
  fst (bound_with_objective p ~objective:zero ~y:ray)

let default_farkas_tol = 1e-9

let check_farkas ?(tol = default_farkas_tol) (p : Problem.t) ~ray =
  Array.length ray = Problem.nrows p
  && Array.for_all Float.is_finite ray
  &&
  let rhs_part =
    (* Scale for the acceptance threshold: the margin of a genuine
       certificate grows with the rhs magnitudes it aggregates. *)
    let acc = ref 0. in
    Array.iteri
      (fun i (row : Problem.row) -> acc := !acc +. Float.abs (ray.(i) *. row.rhs))
      p.rows;
    !acc
  in
  match farkas_margin p ~ray with
  | margin -> Float.is_finite margin && margin > tol *. (1. +. rhs_part)
  | exception Invalid_argument _ -> false

let row_farkas ?(tol = default_farkas_tol) (p : Problem.t) =
  let m = Problem.nrows p in
  (* Supremum / infimum of a row's left-hand side over the variable box. *)
  let sup (row : Problem.row) =
    Array.fold_left
      (fun acc (j, v) ->
        acc +. (if v >= 0. then v *. p.upper.(j) else v *. p.lower.(j)))
      0. row.coeffs
  in
  let inf (row : Problem.row) =
    Array.fold_left
      (fun acc (j, v) ->
        acc +. (if v >= 0. then v *. p.lower.(j) else v *. p.upper.(j)))
      0. row.coeffs
  in
  let found = ref None in
  (try
     for i = 0 to m - 1 do
       let row = p.rows.(i) in
       let slack = tol *. (1. +. Float.abs row.rhs) in
       let hit sign =
         let ray = Array.make m 0. in
         ray.(i) <- sign;
         if check_farkas ~tol p ~ray then begin
           found := Some ray;
           raise Exit
         end
       in
       (match row.kind with
       | Problem.Ge ->
         let s = sup row in
         if Float.is_finite s && s < row.rhs -. slack then hit 1.
       | Problem.Eq ->
         let s = sup row in
         if Float.is_finite s && s < row.rhs -. slack then hit 1.
         else
           let l = inf row in
           if Float.is_finite l && l > row.rhs +. slack then hit (-1.)
       | Problem.Le ->
         invalid_arg "Certificate.row_farkas: problem must be Ge-normalized")
     done
   with Exit -> ());
  !found
