(** First-order LP solver: preconditioned primal–dual hybrid gradient
    (Chambolle–Pock, with the diagonal preconditioning of Pock–Chambolle
    2011).

    This is the scalable replacement for CPLEX. It needs only sparse
    matrix–vector products per iteration, so MC-PERF instances with 10^5+
    variables are tractable. Because the {!Certificate} bound is valid at
    every iterate, the solver can stop on an iteration budget and still
    return a usable (merely looser) lower bound; the [best_bound] field is
    the maximum certified bound seen at any checkpoint. *)

type options = {
  max_iters : int;  (** hard iteration cap (default 20_000) *)
  check_every : int;  (** convergence/bound checkpoint period (default 50) *)
  rel_tol : float;  (** relative gap + infeasibility target (default 1e-6) *)
  restart_every : int;
      (** restart from the ergodic average every this many iterations
          (default 1_000; 0 disables). Restarting upgrades PDHG's
          sublinear tail to fast linear convergence on most LPs — the
          core trick of Google's PDLP. *)
  verbose : bool;  (** log checkpoint progress via [logs] *)
  deadline_s : float;
      (** wall-clock budget for one solve (default [infinity] = none).
          Checked at checkpoints only, so the precision is one
          [check_every] block; when it fires, the solve returns the best
          certified bound seen so far — still valid by weak duality, just
          looser. With the default the clock is never read and iterates
          are bit-identical to a build without this feature. *)
}

val default_options : options

(** Why a solve returned. Every reason yields a valid [best_bound];
    [Deadline] and [Budget] simply mean the bound may be loose. *)
type stop_reason =
  | Converged  (** met [rel_tol] *)
  | Deadline  (** [deadline_s] expired at a checkpoint *)
  | Budget  (** ran all [max_iters] iterations *)

val stop_label : stop_reason -> string

type outcome = {
  x : float array;  (** final primal iterate (approximately feasible) *)
  y : float array;  (** final dual iterate *)
  best_bound : float;  (** best certified lower bound over all checkpoints *)
  best_y : float array;  (** dual iterate achieving [best_bound] *)
  primal_objective : float;  (** c . x at the final iterate *)
  primal_infeasibility : float;  (** max constraint/bound violation of x *)
  iterations : int;
  converged : bool;  (** met [rel_tol] before the iteration cap *)
  stop : stop_reason;  (** why the solve returned ([converged] iff [Converged]) *)
  rel_gap : float;
      (** relative primal-dual gap estimate at exit:
          [|c.x - best_bound| / (1 + |c.x| + |best_bound|)]; [infinity]
          when no finite bound was certified *)
}

type prepared
(** A problem together with its solver-ready image: the Ge-normalized
    rows, the CSR/CSC constraint matrix, the rhs vector and the diagonal
    preconditioners. Building this is O(nnz); reusing it across solves of
    structurally identical problems (same coefficient arrays, possibly
    different rhs or objective) skips the rebuild entirely. *)

val prepare : ?reuse:prepared -> Problem.t -> prepared
(** [prepare ?reuse p] builds the solver image of [p]. When [reuse] is a
    prepared image of a structurally identical problem — same dimensions,
    same row kinds, the rows carry the {e physically} same coefficient
    arrays and the same bound arrays — the sparse matrix and the
    preconditioners are shared and only the rhs is re-read. This is the
    fast path for rhs-patched QoS-sweep models ({!Mcperf.Model}-style
    incremental updates) and for Lagrangian subproblems whose objective is
    rewritten in place between solves. Falls back to a full build when the
    structures do not match. Raises [Invalid_argument] unless every
    variable has finite lower and upper bounds. *)

val prepared_problem : prepared -> Problem.t
(** The Ge-normalized problem underlying the prepared image (the form on
    which {!Certificate.dual_bound} certificates are valid). *)

val solve_prepared :
  ?options:options ->
  ?x0:float array ->
  ?y0:float array ->
  prepared ->
  outcome
(** Run the solver on a prepared image. The per-iteration work is fused
    into four streams (primal step + extrapolation + averaging; A·x_bar;
    dual step + averaging; Aᵀ·y) instead of one pass per conceptual
    operation. *)

val solve :
  ?options:options ->
  ?x0:float array ->
  ?y0:float array ->
  Problem.t ->
  outcome
(** [solve p] normalizes [p] with {!Problem.normalize_ge} and runs PDHG
    from the lower-bound corner, or from the warm-start iterates [x0]/[y0]
    when given (box-projected; a QoS sweep over similar models converges
    much faster from the previous point). Every variable must have finite
    lower and upper bounds (the MC-PERF builder guarantees this);
    otherwise [Invalid_argument] is raised. Equivalent to
    [solve_prepared (prepare p)]. *)

val solve_reference :
  ?options:options ->
  ?x0:float array ->
  ?y0:float array ->
  Problem.t ->
  outcome
(** The pre-fusion iteration — one pass per conceptual step — kept as the
    oracle for the differential tests. Produces the same iterates as
    {!solve} (bit-identical on finite data); it is only slower. *)
