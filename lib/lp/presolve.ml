type result = {
  reduced : Problem.t;
  offset : float;
  restore : float array -> float array;
  var_map : int array;
  status : [ `Reduced | `Infeasible | `Unchanged ];
  fixed_vars : int;
  dropped_rows : int;
}

let identity_map n = Array.init n (fun j -> j)

let fix_tol = 1e-12
let feas_tol = 1e-9

type state = {
  lower : float array;
  upper : float array;
  fixed : float option array;
  mutable infeasible : bool;
}

let fix st j v =
  match st.fixed.(j) with
  | Some old -> if Float.abs (old -. v) > feas_tol then st.infeasible <- true
  | None ->
    if v < st.lower.(j) -. feas_tol || v > st.upper.(j) +. feas_tol then
      st.infeasible <- true
    else st.fixed.(j) <- Some v

let maybe_fix_by_bounds st j =
  if st.fixed.(j) = None then begin
    if st.lower.(j) > st.upper.(j) +. feas_tol then st.infeasible <- true
    else if st.upper.(j) -. st.lower.(j) <= fix_tol then fix st j st.lower.(j)
  end

let tighten_lower st j v =
  if v > st.lower.(j) then st.lower.(j) <- v;
  maybe_fix_by_bounds st j

let tighten_upper st j v =
  if v < st.upper.(j) then st.upper.(j) <- v;
  maybe_fix_by_bounds st j

(* One pass over the live rows: substitute fixed variables, drop rows that
   became trivial, turn singleton rows into bound updates. Returns the
   still-live rows and whether anything changed. *)
let row_pass st rows =
  let changed = ref false in
  let live = ref [] in
  List.iter
    (fun (row : Problem.row) ->
      if st.infeasible then ()
      else begin
        let shift = ref 0. in
        let unfixed = ref [] in
        Array.iter
          (fun (j, a) ->
            match st.fixed.(j) with
            | Some v -> shift := !shift +. (a *. v)
            | None -> unfixed := (j, a) :: !unfixed)
          row.coeffs;
        let rhs = row.rhs -. !shift in
        match !unfixed with
        | [] ->
          changed := true;
          let ok =
            match row.kind with
            | Problem.Ge -> 0. >= rhs -. feas_tol
            | Problem.Le -> 0. <= rhs +. feas_tol
            | Problem.Eq -> Float.abs rhs <= feas_tol
          in
          if not ok then st.infeasible <- true
        | [ (j, a) ] when a <> 0. ->
          changed := true;
          let v = rhs /. a in
          (match (row.kind, a > 0.) with
          | Problem.Eq, _ -> fix st j v
          | Problem.Ge, true | Problem.Le, false -> tighten_lower st j v
          | Problem.Ge, false | Problem.Le, true -> tighten_upper st j v)
        | _ -> live := row :: !live
      end)
    rows;
  (List.rev !live, !changed)

(* Fix variables that occur in no live row at their cheapest finite bound;
   variables with an unbounded improving direction are left for the solver
   (it will report unboundedness if the objective pushes that way). *)
let fix_unreferenced st (p : Problem.t) rows =
  let changed = ref false in
  let appears = Array.make (Array.length st.fixed) false in
  List.iter
    (fun (row : Problem.row) ->
      Array.iter
        (fun (j, _) -> if st.fixed.(j) = None then appears.(j) <- true)
        row.coeffs)
    rows;
  Array.iteri
    (fun j is_used ->
      if (not is_used) && st.fixed.(j) = None then begin
        let c = p.objective.(j) in
        let candidate =
          if c > 0. then
            if Float.is_finite st.lower.(j) then Some st.lower.(j) else None
          else if c < 0. then
            if Float.is_finite st.upper.(j) then Some st.upper.(j) else None
          else
            Some
              (Util.Vecops.clamp 0. ~lo:st.lower.(j) ~hi:st.upper.(j))
        in
        match candidate with
        | Some v ->
          fix st j v;
          changed := true
        | None -> ()
      end)
    appears;
  !changed

let run ?(max_passes = 10) ?(fix_unreferenced_vars = true) (p : Problem.t) =
  let n = Problem.nvars p in
  let st =
    {
      lower = Array.copy p.lower;
      upper = Array.copy p.upper;
      fixed = Array.make n None;
      infeasible = false;
    }
  in
  for j = 0 to n - 1 do
    maybe_fix_by_bounds st j
  done;
  let rows = ref (Array.to_list p.rows) in
  let continue_passes = ref true in
  let passes = ref 0 in
  while !continue_passes && (not st.infeasible) && !passes < max_passes do
    incr passes;
    let live, rows_changed = row_pass st !rows in
    rows := live;
    let vars_changed =
      fix_unreferenced_vars && fix_unreferenced st p live
    in
    continue_passes := rows_changed || vars_changed
  done;
  if st.infeasible then
    {
      reduced = p;
      offset = 0.;
      restore = Fun.id;
      var_map = identity_map n;
      status = `Infeasible;
      fixed_vars = 0;
      dropped_rows = 0;
    }
  else begin
    let fixed_vars =
      Array.fold_left
        (fun acc f -> if f <> None then acc + 1 else acc)
        0 st.fixed
    in
    let dropped_rows = Array.length p.rows - List.length !rows in
    if fixed_vars = 0 && dropped_rows = 0 then
      {
        reduced = p;
        offset = 0.;
        restore = Fun.id;
        var_map = identity_map n;
        status = `Unchanged;
        fixed_vars = 0;
        dropped_rows = 0;
      }
    else begin
      (* Build the reduced problem over the surviving variables. *)
      let new_index = Array.make n (-1) in
      let b = Problem.Builder.create () in
      let offset = ref 0. in
      for j = 0 to n - 1 do
        match st.fixed.(j) with
        | Some v -> offset := !offset +. (p.objective.(j) *. v)
        | None ->
          new_index.(j) <-
            Problem.Builder.add_var b
              ~name:(if p.names.(j) = "" then "" else p.names.(j))
              ~lo:st.lower.(j) ~hi:st.upper.(j) ~obj:p.objective.(j) ()
      done;
      List.iter
        (fun (row : Problem.row) ->
          let shift = ref 0. in
          let terms = ref [] in
          Array.iter
            (fun (j, a) ->
              match st.fixed.(j) with
              | Some v -> shift := !shift +. (a *. v)
              | None -> terms := (new_index.(j), a) :: !terms)
            row.coeffs;
          Problem.Builder.add_row b row.kind ~rhs:(row.rhs -. !shift) !terms)
        !rows;
      let reduced = Problem.Builder.build b in
      let fixed_snapshot = Array.copy st.fixed in
      let restore x' =
        Array.init n (fun j ->
            match fixed_snapshot.(j) with
            | Some v -> v
            | None -> x'.(new_index.(j)))
      in
      {
        reduced;
        offset = !offset;
        restore;
        var_map = new_index;
        status = `Reduced;
        fixed_vars;
        dropped_rows;
      }
    end
  end
