(** Compressed sparse row (CSR) matrices over floats.

    The first-order LP solver only needs [y <- A x] and [y <- A^T x]
    products, so this module stores one CSR image of the matrix and a
    precomputed transpose for cache-friendly products in both
    directions. *)

type t

val rows : t -> int
val cols : t -> int
val nnz : t -> int

val of_row_list : rows:int -> cols:int -> (int * float) list array -> t
(** [of_row_list ~rows ~cols per_row] builds from per-row [(col, coeff)]
    lists. Duplicate column entries within a row are summed; entries whose
    sum is zero are dropped. Column indices must be in range and every
    coefficient finite — a NaN or infinite coefficient raises
    [Invalid_argument] instead of silently producing a matrix on which the
    solvers cannot converge. Construction is a chain of counting sorts:
    linear in the entry count, no hashing or comparison sorts. *)

val mul : t -> float array -> float array -> unit
(** [mul a x y] computes [y <- A x]. Requires [length x = cols],
    [length y = rows]. *)

val mul_t : t -> float array -> float array -> unit
(** [mul_t a x y] computes [y <- A^T x]. Requires [length x = rows],
    [length y = cols]. *)

val row : t -> int -> (int * float) array
(** Entries of one row (shared, do not mutate). *)

val row_abs_sums : t -> float array
(** Per-row sums of absolute values (PDHG preconditioner). *)

val col_abs_sums : t -> float array
(** Per-column sums of absolute values. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** Iterate the nonzeros of a row without allocating. *)
