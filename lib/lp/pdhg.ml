type options = {
  max_iters : int;
  check_every : int;
  rel_tol : float;
  restart_every : int;
  verbose : bool;
  deadline_s : float;
}

let default_options =
  {
    max_iters = 20_000;
    check_every = 50;
    rel_tol = 1e-6;
    restart_every = 1_000;
    verbose = false;
    deadline_s = infinity;
  }

type stop_reason = Converged | Deadline | Budget

let stop_label = function
  | Converged -> "converged"
  | Deadline -> "deadline"
  | Budget -> "budget"

type outcome = {
  x : float array;
  y : float array;
  best_bound : float;
  best_y : float array;
  primal_objective : float;
  primal_infeasibility : float;
  iterations : int;
  converged : bool;
  stop : stop_reason;
  rel_gap : float;
}

let src = Logs.Src.create "lp.pdhg" ~doc:"first-order LP solver"

module Log = (val Logs.src_log src : Logs.LOG)

(* Observability instruments (cached registry lookups). Only
   [solve_prepared] is instrumented; [solve_reference] stays a pristine
   oracle for the differential tests. *)
let m_solves = lazy (Obs.Metrics.counter "pdhg.solves")
let m_iters = lazy (Obs.Metrics.counter "pdhg.iterations")
let m_restarts = lazy (Obs.Metrics.counter "pdhg.restarts")
let m_checkpoints = lazy (Obs.Metrics.counter "pdhg.checkpoints")
let m_converged = lazy (Obs.Metrics.counter "pdhg.converged")
let m_deadline = lazy (Obs.Metrics.counter "pdhg.deadline_stops")

(* --- prepared problems --------------------------------------------------- *)

type prepared = {
  source : Problem.t;
  norm : Problem.t;  (* Ge-normalized view of [source] *)
  a : Sparse.t;
  b : float array;
  is_eq : bool array;
  tau : float array;
  sigma : float array;
}

let validate_bounds (p : Problem.t) =
  Array.iteri
    (fun j l ->
      if not (Float.is_finite l && Float.is_finite p.upper.(j)) then
        invalid_arg "Pdhg.solve: all variable bounds must be finite")
    p.lower

(* Structural match for matrix reuse: the rows must carry the very same
   coefficient arrays (physical equality — the cheap check that holds for
   rhs-patched problems and for problems whose objective was rewritten in
   place) under the same kinds and box bounds. The rhs may differ freely:
   it only enters [b]. *)
let reusable r (p : Problem.t) =
  let s = r.source in
  Problem.nvars p = Problem.nvars s
  && Problem.nrows p = Problem.nrows s
  && p.lower == s.lower && p.upper == s.upper
  &&
  let rec rows_match i =
    i >= Array.length p.rows
    || (p.rows.(i).kind = s.rows.(i).kind
        && p.rows.(i).coeffs == s.rows.(i).coeffs
        && rows_match (i + 1))
  in
  rows_match 0

let prepare ?reuse p =
  validate_bounds p;
  let norm = Problem.normalize_ge p in
  match reuse with
  | Some r when reusable r p ->
    { r with source = p; norm; b = Problem.rhs_vector norm }
  | Some _ | None ->
    let a = Problem.constraint_matrix norm in
    let b = Problem.rhs_vector norm in
    let is_eq =
      Array.map (fun (r : Problem.row) -> r.kind = Problem.Eq) norm.rows
    in
    (* Diagonal preconditioners: tau_j = 1 / sum_i |A_ij|, sigma_i =
       1 / sum_j |A_ij| (alpha = 1), which satisfies the Pock-Chambolle
       convergence condition. Empty rows/columns get a neutral step. *)
    let tau =
      Array.map (fun s -> if s > 0. then 1. /. s else 1.) (Sparse.col_abs_sums a)
    in
    let sigma =
      Array.map (fun s -> if s > 0. then 1. /. s else 1.) (Sparse.row_abs_sums a)
    in
    { source = p; norm; a; b; is_eq; tau; sigma }

let prepared_problem r = r.norm

(* --- fused solver -------------------------------------------------------- *)

(* The iteration streams each vector once per step:

     pass 1 (length n): primal step + box projection, extrapolation to
       x_bar, and the ergodic-average accumulation — fused;
     pass 2:            y <- A x_bar  (CSR matvec);
     pass 3 (length m): dual ascent + cone projection + average — fused;
     pass 4:            aty <- A^T y (CSC matvec).

   The reference implementation below ([solve_reference]) runs the same
   recurrence as separate passes; the differential tests pin the two
   together. Keeping the per-element arithmetic in the same order and
   association makes the fused path bit-identical, not merely close. *)

let solve_prepared ?(options = default_options) ?x0 ?y0 pr =
  let p = pr.norm in
  let n = Problem.nvars p and m = Problem.nrows p in
  let a = pr.a in
  let b = pr.b in
  let c = p.objective in
  let lower = p.lower and upper = p.upper in
  let tau = pr.tau and sigma = pr.sigma in
  let is_eq = pr.is_eq in
  let x =
    match x0 with
    | None -> Array.copy lower
    | Some x0 ->
      if Array.length x0 <> n then invalid_arg "Pdhg.solve: x0 dimension";
      Array.mapi
        (fun j v -> Util.Vecops.clamp v ~lo:lower.(j) ~hi:upper.(j))
        x0
  in
  let y =
    match y0 with
    | None -> Array.make m 0.
    | Some y0 ->
      if Array.length y0 <> m then invalid_arg "Pdhg.solve: y0 dimension";
      Array.copy y0
  in
  let aty = Array.make n 0. in
  let ax_bar = Array.make m 0. in
  let x_bar = Array.make n 0. in
  (* Running averages for restarts: on LPs, periodically restarting the
     iteration from the ergodic average empirically upgrades PDHG's O(1/k)
     rate to fast linear convergence (the key idea behind PDLP). *)
  let x_sum = Array.make n 0. in
  let y_sum = Array.make m 0. in
  let since_restart = ref 0 in
  let best_bound = ref neg_infinity in
  let best_y = ref (Array.copy y) in
  let iterations = ref 0 in
  let converged = ref false in
  let deadline_hit = ref false in
  (* Wall-clock budget: checked only at checkpoints, and only when a
     finite deadline was asked for — the default path never reads the
     clock, so iterates are bit-identical with or without this feature. *)
  let budgeted = Float.is_finite options.deadline_s in
  let t_start = if budgeted then Unix.gettimeofday () else 0. in
  let past_deadline () =
    budgeted && Unix.gettimeofday () -. t_start >= options.deadline_s
  in
  let sp =
    Obs.Trace.span_begin "pdhg.solve"
      ~attrs:[ ("n", Obs.Trace.Int n); ("m", Obs.Trace.Int m) ]
  in
  Sparse.mul_t a y aty;
  (try
     for iter = 1 to options.max_iters do
       iterations := iter;
       (* Fused primal pass: projected preconditioned step, extrapolation
          and average accumulation in one stream over the variables. *)
       for j = 0 to n - 1 do
         let xj = Array.unsafe_get x j in
         let g = Array.unsafe_get c j -. Array.unsafe_get aty j in
         let v = xj -. (Array.unsafe_get tau j *. g) in
         let l = Array.unsafe_get lower j and h = Array.unsafe_get upper j in
         let xn = if v < l then l else if v > h then h else v in
         Array.unsafe_set x j xn;
         Array.unsafe_set x_bar j ((2. *. xn) -. xj);
         Array.unsafe_set x_sum j (Array.unsafe_get x_sum j +. xn)
       done;
       Sparse.mul a x_bar ax_bar;
       (* Fused dual pass: ascend on b - A x_bar, project Ge duals to
          >= 0, accumulate the average. *)
       for i = 0 to m - 1 do
         let yi =
           Array.unsafe_get y i
           +. (Array.unsafe_get sigma i
               *. (Array.unsafe_get b i -. Array.unsafe_get ax_bar i))
         in
         let yi =
           if Array.unsafe_get is_eq i then yi
           else if yi > 0. then yi
           else 0.
         in
         Array.unsafe_set y i yi;
         Array.unsafe_set y_sum i (Array.unsafe_get y_sum i +. yi)
       done;
       Sparse.mul_t a y aty;
       incr since_restart;
       if options.restart_every > 0 && !since_restart >= options.restart_every
       then begin
         if Obs.Config.tracing () then
           Obs.Trace.event "pdhg.restart"
             ~attrs:[ ("iter", Obs.Trace.Int iter) ];
         Obs.Metrics.incr (Lazy.force m_restarts);
         let inv = 1. /. float_of_int !since_restart in
         for j = 0 to n - 1 do
           x.(j) <- x_sum.(j) *. inv;
           x_sum.(j) <- 0.
         done;
         for i = 0 to m - 1 do
           let avg = y_sum.(i) *. inv in
           y.(i) <- (if is_eq.(i) then avg else Float.max 0. avg);
           y_sum.(i) <- 0.
         done;
         since_restart := 0;
         Sparse.mul_t a y aty
       end;
       if iter mod options.check_every = 0 then begin
         let bound = Certificate.dual_bound p ~y in
         if bound > !best_bound then begin
           best_bound := bound;
           best_y := Array.copy y
         end;
         let pobj = Util.Vecops.dot c x in
         let pinf = Problem.max_violation p x in
         let scale = 1. +. Float.abs pobj +. Float.abs !best_bound in
         let gap = Float.abs (pobj -. !best_bound) /. scale in
         if options.verbose then
           Log.info (fun f ->
               f "iter %6d  obj %.6g  bound %.6g  gap %.2e  pinf %.2e" iter
                 pobj !best_bound gap pinf);
         Obs.Metrics.incr (Lazy.force m_checkpoints);
         if Obs.Config.tracing () then
           Obs.Trace.event "pdhg.checkpoint"
             ~attrs:
               [
                 ("iter", Obs.Trace.Int iter);
                 ("bound", Obs.Trace.Float !best_bound);
                 ("gap", Obs.Trace.Float gap);
                 ("pinf", Obs.Trace.Float pinf);
               ];
         if
           Float.is_finite !best_bound
           && gap < options.rel_tol
           && pinf < options.rel_tol *. (1. +. Util.Vecops.norm_inf b)
         then begin
           converged := true;
           raise Exit
         end;
         if past_deadline () then begin
           deadline_hit := true;
           raise Exit
         end
       end
     done
   with Exit -> ());
  (* Final checkpoint in case the loop ended between checks. *)
  let final_bound = Certificate.dual_bound p ~y in
  if final_bound > !best_bound then begin
    best_bound := final_bound;
    best_y := Array.copy y
  end;
  let primal_objective = Util.Vecops.dot c x in
  let rel_gap =
    if Float.is_finite !best_bound then
      Float.abs (primal_objective -. !best_bound)
      /. (1. +. Float.abs primal_objective +. Float.abs !best_bound)
    else infinity
  in
  Obs.Metrics.incr (Lazy.force m_solves);
  Obs.Metrics.incr ~by:!iterations (Lazy.force m_iters);
  if !converged then Obs.Metrics.incr (Lazy.force m_converged);
  if !deadline_hit then Obs.Metrics.incr (Lazy.force m_deadline);
  Obs.Trace.span_end sp
    ~attrs:
      [
        ("iterations", Obs.Trace.Int !iterations);
        ( "stop",
          Obs.Trace.Str
            (stop_label
               (if !converged then Converged
                else if !deadline_hit then Deadline
                else Budget)) );
        ("bound", Obs.Trace.Float !best_bound);
        ("rel_gap", Obs.Trace.Float rel_gap);
      ];
  {
    x;
    y;
    best_bound = !best_bound;
    best_y = !best_y;
    primal_objective;
    primal_infeasibility = Problem.max_violation p x;
    iterations = !iterations;
    converged = !converged;
    stop =
      (if !converged then Converged
       else if !deadline_hit then Deadline
       else Budget);
    rel_gap;
  }

let solve ?options ?x0 ?y0 problem =
  solve_prepared ?options ?x0 ?y0 (prepare problem)

(* --- reference implementation -------------------------------------------- *)

(* The pre-fusion iteration, kept as the oracle for the differential
   tests: one pass per conceptual step (copy, primal, extrapolate, matvec,
   dual, matvec, two average accumulations). Any divergence between this
   and [solve_prepared] beyond float-noise is a kernel bug. *)

let solve_reference ?(options = default_options) ?x0 ?y0 problem =
  let pr = prepare problem in
  let p = pr.norm in
  let n = Problem.nvars p and m = Problem.nrows p in
  let a = pr.a in
  let b = pr.b in
  let c = p.objective in
  let tau = pr.tau and sigma = pr.sigma in
  let is_eq = pr.is_eq in
  let x =
    match x0 with
    | None -> Array.copy p.lower
    | Some x0 ->
      if Array.length x0 <> n then invalid_arg "Pdhg.solve: x0 dimension";
      Array.mapi
        (fun j v -> Util.Vecops.clamp v ~lo:p.lower.(j) ~hi:p.upper.(j))
        x0
  in
  let y =
    match y0 with
    | None -> Array.make m 0.
    | Some y0 ->
      if Array.length y0 <> m then invalid_arg "Pdhg.solve: y0 dimension";
      Array.copy y0
  in
  let x_prev = Array.make n 0. in
  let aty = Array.make n 0. in
  let ax_bar = Array.make m 0. in
  let x_bar = Array.make n 0. in
  let x_sum = Array.make n 0. in
  let y_sum = Array.make m 0. in
  let since_restart = ref 0 in
  let best_bound = ref neg_infinity in
  let best_y = ref (Array.copy y) in
  let iterations = ref 0 in
  let converged = ref false in
  let deadline_hit = ref false in
  let budgeted = Float.is_finite options.deadline_s in
  let t_start = if budgeted then Unix.gettimeofday () else 0. in
  let past_deadline () =
    budgeted && Unix.gettimeofday () -. t_start >= options.deadline_s
  in
  Sparse.mul_t a y aty;
  (try
     for iter = 1 to options.max_iters do
       iterations := iter;
       Array.blit x 0 x_prev 0 n;
       (* Primal step with box projection. *)
       for j = 0 to n - 1 do
         let g = c.(j) -. aty.(j) in
         x.(j) <-
           Util.Vecops.clamp
             (x.(j) -. (tau.(j) *. g))
             ~lo:p.lower.(j) ~hi:p.upper.(j)
       done;
       (* Extrapolated point. *)
       Util.Vecops.axpby_into 2. x (-1.) x_prev x_bar;
       Sparse.mul a x_bar ax_bar;
       (* Dual step: ascend on b - A x_bar; project Ge duals to >= 0. *)
       for i = 0 to m - 1 do
         let yi = y.(i) +. (sigma.(i) *. (b.(i) -. ax_bar.(i))) in
         y.(i) <- (if is_eq.(i) then yi else Float.max 0. yi)
       done;
       Sparse.mul_t a y aty;
       Util.Vecops.axpy 1. x x_sum;
       Util.Vecops.axpy 1. y y_sum;
       incr since_restart;
       if options.restart_every > 0 && !since_restart >= options.restart_every
       then begin
         let inv = 1. /. float_of_int !since_restart in
         for j = 0 to n - 1 do
           x.(j) <- x_sum.(j) *. inv;
           x_sum.(j) <- 0.
         done;
         for i = 0 to m - 1 do
           let avg = y_sum.(i) *. inv in
           y.(i) <- (if is_eq.(i) then avg else Float.max 0. avg);
           y_sum.(i) <- 0.
         done;
         since_restart := 0;
         Sparse.mul_t a y aty
       end;
       if iter mod options.check_every = 0 then begin
         let bound = Certificate.dual_bound p ~y in
         if bound > !best_bound then begin
           best_bound := bound;
           best_y := Array.copy y
         end;
         let pobj = Util.Vecops.dot c x in
         let pinf = Problem.max_violation p x in
         let scale = 1. +. Float.abs pobj +. Float.abs !best_bound in
         let gap = Float.abs (pobj -. !best_bound) /. scale in
         if
           Float.is_finite !best_bound
           && gap < options.rel_tol
           && pinf < options.rel_tol *. (1. +. Util.Vecops.norm_inf b)
         then begin
           converged := true;
           raise Exit
         end;
         if past_deadline () then begin
           deadline_hit := true;
           raise Exit
         end
       end
     done
   with Exit -> ());
  let final_bound = Certificate.dual_bound p ~y in
  if final_bound > !best_bound then begin
    best_bound := final_bound;
    best_y := Array.copy y
  end;
  let primal_objective = Util.Vecops.dot c x in
  let rel_gap =
    if Float.is_finite !best_bound then
      Float.abs (primal_objective -. !best_bound)
      /. (1. +. Float.abs primal_objective +. Float.abs !best_bound)
    else infinity
  in
  {
    x;
    y;
    best_bound = !best_bound;
    best_y = !best_y;
    primal_objective;
    primal_infeasibility = Problem.max_violation p x;
    iterations = !iterations;
    converged = !converged;
    stop =
      (if !converged then Converged
       else if !deadline_hit then Deadline
       else Budget);
    rel_gap;
  }
