(* Bechamel micro/meso-benchmarks: one group per paper artefact (Figures
   1-3, the Section 5 scale discussion) plus the substrate hot paths.

   These run each piece at a reduced scale so the whole suite finishes in
   a couple of minutes; `bin/experiments.exe` regenerates the figures at
   full case-study scale. *)

open Bechamel
open Toolkit

module CS = Replica_select.Case_study

(* Shared fixtures, built once (fixture construction is excluded from the
   measured spans; each Test.make closure only runs the measured piece). *)

let web = lazy (CS.make ~nodes:10 ~scale:0.02 ~intervals:12 CS.Web)
let group = lazy (CS.make ~nodes:10 ~scale:0.01 ~intervals:12 CS.Group)

let bound_once cs cls =
  let spec = CS.qos_spec cs ~fraction:0.99 ~for_bounds:true () in
  ignore (Bounds.Pipeline.compute spec cls)

(* --- Figure 1: one class bound per benchmark --------------------------- *)

let fig1_tests =
  let t name cls =
    Test.make ~name (Staged.stage (fun () -> bound_once (Lazy.force web) cls))
  in
  Test.make_grouped ~name:"fig1"
    [
      t "web-general" Mcperf.Classes.general;
      t "web-storage-constrained" Mcperf.Classes.storage_constrained;
      t "web-replica-constrained" Mcperf.Classes.replica_constrained_uniform;
      Test.make ~name:"group-general"
        (Staged.stage (fun () ->
             bound_once (Lazy.force group) Mcperf.Classes.general));
    ]

(* --- Figure 2: deployed heuristics ------------------------------------- *)

let fig2_tests =
  Test.make_grouped ~name:"fig2"
    [
      Test.make ~name:"web-greedy-global-place"
        (Staged.stage (fun () ->
             let cs = Lazy.force web in
             let spec = CS.qos_spec cs ~fraction:0.99 ~for_bounds:false () in
             ignore (Heuristics.Greedy_global.evaluate ~spec ~capacity:10. ())));
      Test.make ~name:"group-greedy-replica-place"
        (Staged.stage (fun () ->
             let cs = Lazy.force group in
             let spec = CS.qos_spec cs ~fraction:0.99 ~for_bounds:false () in
             ignore (Heuristics.Greedy_replica.evaluate ~spec ~replicas:2 ())));
      Test.make ~name:"web-lru-simulation"
        (Staged.stage (fun () ->
             let cs = Lazy.force web in
             let spec = CS.qos_spec cs ~fraction:0.99 ~for_bounds:false () in
             ignore
               (Sim.Runner.cache_outcome_at ~spec ~trace:cs.CS.trace
                  ~capacity:20 ~mode:Heuristics.Event_cache.Local ())));
      Test.make ~name:"group-coop-cache-simulation"
        (Staged.stage (fun () ->
             let cs = Lazy.force group in
             let spec = CS.qos_spec cs ~fraction:0.99 ~for_bounds:false () in
             ignore
               (Sim.Runner.cache_outcome_at ~spec ~trace:cs.CS.trace
                  ~capacity:20 ~mode:Heuristics.Event_cache.Cooperative ())));
    ]

(* --- Figure 3: deployment planning -------------------------------------- *)

let fig3_tests =
  Test.make_grouped ~name:"fig3"
    [
      Test.make ~name:"group-plan-deployment"
        (Staged.stage (fun () ->
             let cs = Lazy.force group in
             let spec = CS.qos_spec cs ~fraction:0.99 ~for_bounds:true () in
             ignore
               (Replica_select.Methodology.plan_deployment ~zeta:1_000. spec)));
    ]

(* --- Section 5: solver scale --------------------------------------------- *)

let scale_tests =
  let solve_at scale =
    let cs = CS.make ~nodes:10 ~scale ~intervals:12 CS.Web in
    let spec = CS.qos_spec cs ~fraction:0.99 ~for_bounds:true () in
    let perm = Mcperf.Permission.compute spec Mcperf.Classes.general in
    let model = Mcperf.Model.build perm in
    fun () ->
      ignore
        (Lp.Pdhg.solve
           ~options:{ Lp.Pdhg.default_options with max_iters = 2_000 }
           model.Mcperf.Model.problem)
  in
  Test.make_grouped ~name:"scale"
    [
      Test.make ~name:"pdhg-2k-iters-scale-0.01" (Staged.stage (solve_at 0.01));
      Test.make ~name:"pdhg-2k-iters-scale-0.02" (Staged.stage (solve_at 0.02));
    ]

(* --- substrate hot paths --------------------------------------------------- *)

let substrate_tests =
  let rng = Util.Prng.create ~seed:1 in
  let g20 =
    Topology.Generate.as_like ~rng ~nodes:20
      ~latency:Topology.Generate.default_hop_latency ()
  in
  let small_lp =
    let b = Lp.Problem.Builder.create () in
    for _ = 1 to 30 do
      ignore (Lp.Problem.Builder.add_var b ~lo:0. ~hi:10. ~obj:1. ())
    done;
    for i = 0 to 19 do
      Lp.Problem.Builder.add_row b Lp.Problem.Ge ~rhs:2.
        [ (i, 1.); (i + 5, 1.); ((i + 11) mod 30, 0.5) ]
    done;
    Lp.Problem.Builder.build b
  in
  let round_model =
    lazy
      (let cs = Lazy.force web in
       let spec = CS.qos_spec cs ~fraction:0.99 ~for_bounds:true () in
       let perm = Mcperf.Permission.compute spec Mcperf.Classes.general in
       let model = Mcperf.Model.build perm in
       let out =
         Lp.Pdhg.solve
           ~options:{ Lp.Pdhg.default_options with max_iters = 4_000 }
           model.Mcperf.Model.problem
       in
       (model, out.Lp.Pdhg.x))
  in
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"dijkstra-all-pairs-20"
        (Staged.stage (fun () -> ignore (Topology.Shortest_path.all_pairs g20)));
      Test.make ~name:"simplex-30x20"
        (Staged.stage (fun () -> ignore (Lp.Simplex.solve small_lp)));
      Test.make ~name:"zipf-fit-1000"
        (Staged.stage (fun () ->
             ignore
               (Workload.Zipf.fit_mandelbrot ~n:1000 ~total:300_000.
                  ~max_count:36_000. ~min_count:1.)));
      Test.make ~name:"rounding-web-0.02"
        (Staged.stage (fun () ->
             let model, x = Lazy.force round_model in
             ignore (Rounding.Round.round model ~x)));
      Test.make ~name:"permission-masks-web"
        (Staged.stage (fun () ->
             let cs = Lazy.force web in
             let spec = CS.qos_spec cs ~fraction:0.99 ~for_bounds:true () in
             ignore (Mcperf.Permission.compute spec Mcperf.Classes.caching)));
    ]

(* --- sweep: sequential vs parallel figure-2 sweep ------------------------- *)

(* `main.exe sweep` times the Figure-2 bound-and-heuristic sweep twice —
   jobs=1 and jobs=4 — verifies the outputs are identical, and records the
   measured speedup in BENCH_sweep.json. Run on a multi-core box this
   shows the worker pool's gain; on a single-core container the two times
   coincide (the JSON records the detected core count so the number can
   be judged in context). *)

let sweep_classes_fixture =
  [
    ("General lower bound", Mcperf.Classes.general);
    ("Storage constrained", Mcperf.Classes.storage_constrained);
    ("Replica constrained", Mcperf.Classes.replica_constrained_uniform);
    ("Decentral local routing", Mcperf.Classes.decentralized_local_routing);
  ]

let run_sweep ?(deadline_s = infinity) ?obs ?(workers = []) ?timeout_s ~jobs
    () =
  let cs = Lazy.force web in
  let points = [ 0.95; 0.99; 0.999; 0.9999; 0.99999 ] in
  let bound_spec = CS.qos_spec cs ~fraction:0.95 ~for_bounds:true () in
  let sim_spec q = CS.qos_spec cs ~fraction:q ~for_bounds:false () in
  let t0 = Unix.gettimeofday () in
  let bounds =
    Bounds.Pipeline.(
      sweep_classes
        Sweep_config.(
          let base =
            default |> with_jobs jobs |> with_deadline deadline_s
            |> with_workers workers
          in
          let base =
            match timeout_s with
            | Some t -> with_timeout t base
            | None -> base
          in
          match obs with Some o -> with_obs o base | None -> base))
      bound_spec ~fractions:points sweep_classes_fixture
  in
  let deployed =
    Util.Parallel.map_values ~jobs
      ~f:(fun q -> Sim.Runner.greedy_global ~spec:(sim_spec q) ())
      points
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (* Strip the wall-clock fields — and the solve-path tags, which are
     bookkeeping about *how* a cell was recovered, not *what* it
     computed: everything left must be identical across jobs settings
     and across fault-injection runs. *)
  let signature =
    ( List.map
        (fun (label, cells) ->
          ( label,
            List.map
              (fun (q, (r : Bounds.Pipeline.t)) ->
                (q, r.Bounds.Pipeline.feasible, r.Bounds.Pipeline.lower_bound,
                 r.Bounds.Pipeline.lp_iterations))
              cells ))
        bounds.Bounds.Pipeline.per_class,
      List.map
        (Option.map (fun (d : Sim.Runner.deployed) ->
             (d.Sim.Runner.parameter, d.Sim.Runner.cost)))
        deployed )
  in
  (elapsed, signature, bounds)

let json_of_paths paths =
  String.concat ", "
    (List.map
       (fun (p, n) ->
         Printf.sprintf "\"%s\": %d" (Bounds.Pipeline.path_label p) n)
       paths)

let json_of_qualities sweep =
  String.concat ", "
    (List.map
       (fun (q, n) ->
         Printf.sprintf "\"%s\": %d" (Bounds.Pipeline.quality_label q) n)
       (Bounds.Pipeline.quality_counts sweep))

let json_of_pool (p : Util.Parallel.pool_stats) =
  Printf.sprintf
    "\"worker_deaths\": %d, \"respawns\": %d, \"task_retries\": %d, \
     \"inline_recoveries\": %d, \"timeouts\": %d, \"fork_failures\": %d, \
     \"degraded\": %b, \"remote_workers\": %d, \"remote_deaths\": %d, \
     \"reconnects\": %d, \"blacklisted\": %d"
    p.Util.Parallel.worker_deaths p.Util.Parallel.respawns
    p.Util.Parallel.task_retries p.Util.Parallel.inline_recoveries
    p.Util.Parallel.timeouts p.Util.Parallel.fork_failures
    p.Util.Parallel.degraded p.Util.Parallel.remote_workers
    p.Util.Parallel.remote_deaths p.Util.Parallel.reconnects
    p.Util.Parallel.blacklisted

(* A baseline file is best-effort state from a previous revision: it
   may be absent (fresh checkout), torn (a crash mid-write), or carry a
   drifted schema (older/newer revision). None of those should abort a
   measurement run — every failure mode degrades to "no baseline", a
   warning, and a null speedup in the output. Shared by the
   BENCH_sweep.json and BENCH_lp.json readers so both are equally
   defensive. *)
let read_baseline_num ~file ~key:bare_key =
  let warn reason =
    Printf.printf "warning: %s baseline %s: skipping the comparison\n%!" file
      reason;
    None
  in
  match open_in file with
  | exception Sys_error _ -> None
  | ic ->
    let s =
      match really_input_string ic (in_channel_length ic) with
      | s -> Some s
      | exception _ -> None
    in
    close_in_noerr ic;
    (match s with
    | None -> warn "is unreadable (torn write?)"
    | Some s ->
      let key = "\"" ^ bare_key ^ "\":" in
      let klen = String.length key in
      let rec find i =
        if i + klen > String.length s then None
        else if String.sub s i klen = key then begin
          let j = ref (i + klen) in
          let buf = Buffer.create 16 in
          while
            !j < String.length s
            && (match s.[!j] with
               | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' | ' ' -> true
               | _ -> false)
          do
            if s.[!j] <> ' ' then Buffer.add_char buf s.[!j];
            incr j
          done;
          float_of_string_opt (Buffer.contents buf)
        end
        else find (i + 1)
      in
      (match find 0 with
      | None ->
        warn
          (Printf.sprintf "has no parseable \"%s\" (schema drift?)" bare_key)
      | Some b when Float.is_finite b && b > 0. -> Some b
      | Some _ -> warn (Printf.sprintf "carries an implausible %s" bare_key)))

let read_baseline_sequential_s () =
  read_baseline_num ~file:"BENCH_sweep.json" ~key:"sequential_s"

(* Speedup numbers are only meaningful when the parallel legs actually
   had cores to spread over, and only comparable to a baseline measured
   on the same core count. Surface both conditions instead of letting a
   1-core box silently report a "regression". *)
let warn_core_context ~file ~cores =
  if cores <= 1 then
    Printf.printf
      "warning: 1 detected core; parallel legs measure dispatch overhead, \
       not speedup\n%!";
  match read_baseline_num ~file ~key:"detected_cores" with
  | Some b when int_of_float b <> cores ->
    Printf.printf
      "warning: %s baseline ran on %d core(s), this machine has %d; \
       speedup comparisons are cross-machine\n%!"
      file (int_of_float b) cores
  | Some _ | None -> ()

(* The injected-fault leg of the sweep benchmark: crash a worker on every
   3rd bound cell and poison the PDHG input on ~10%% of cells. The sweep
   must still complete with results identical to the clean run; the extra
   wall-clock is the price of the recovery machinery under fire, recorded
   so robustness overhead is visible in BENCH_LOG.tsv. *)
let bench_fault_spec = "seed=7,crash_every=3,diverge=0.1"

let sweep_benchmark () =
  let cores = Util.Parallel.available_cores () in
  let tasks = (List.length sweep_classes_fixture * 5) + 5 in
  Printf.printf "sweep benchmark: %d tasks, %d detected core(s)\n%!" tasks cores;
  warn_core_context ~file:"BENCH_sweep.json" ~cores;
  let seq_s, seq_sig, _ = run_sweep ~jobs:1 () in
  Printf.printf "jobs=1: %.2fs\n%!" seq_s;
  let par_jobs = 4 in
  let par_s, par_sig, par_bounds = run_sweep ~jobs:par_jobs () in
  let paths = Bounds.Pipeline.path_counts par_bounds in
  let pool = par_bounds.Bounds.Pipeline.pool in
  Printf.printf "jobs=%d: %.2fs\n%!" par_jobs par_s;
  if seq_sig <> par_sig then
    failwith "sweep benchmark: parallel and sequential results differ";
  let speedup = if par_s > 0. then seq_s /. par_s else 1. in
  Printf.printf "identical results; speedup %.2fx\n%!" speedup;
  let fault_spec =
    match Util.Faults.parse bench_fault_spec with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  Util.Faults.install fault_spec;
  let faulted_s, faulted_sig, faulted_bounds = run_sweep ~jobs:par_jobs () in
  let faulted_paths = Bounds.Pipeline.path_counts faulted_bounds in
  let faulted_pool = faulted_bounds.Bounds.Pipeline.pool in
  Util.Faults.install Util.Faults.none;
  if faulted_sig <> par_sig then
    failwith "sweep benchmark: injected-fault run changed the results";
  Printf.printf "jobs=%d with '%s': %.2fs, identical results\n%!" par_jobs
    bench_fault_spec faulted_s;
  (* Deadline leg: grant ~30%% of the sequential wall-clock. The sweep
     must finish within the budget plus one cell's grace (a cell can only
     stop at its next solver checkpoint), and every degraded bound must
     sit at or below its unconstrained counterpart — a truncated PDHG run
     is a prefix of the same deterministic iterate stream, so its
     best-bound can only be looser (smaller). *)
  let budget_s = Float.max 1. (0.3 *. seq_s) in
  let dl_s, _, dl_bounds = run_sweep ~deadline_s:budget_s ~jobs:par_jobs () in
  let dl_max_cell =
    List.fold_left
      (fun acc (s : Bounds.Pipeline.task_stat) ->
        Float.max acc s.Bounds.Pipeline.wall_s)
      0. dl_bounds.Bounds.Pipeline.stats
  in
  let dl_grace = dl_max_cell +. 1.0 in
  let within_budget = dl_s <= budget_s +. dl_grace in
  let bounds_dominated =
    List.for_all2
      (fun (_, clean_cells) (_, dl_cells) ->
        List.for_all2
          (fun (_, (c : Bounds.Pipeline.t)) (_, (d : Bounds.Pipeline.t)) ->
            (not c.Bounds.Pipeline.feasible)
            || (not d.Bounds.Pipeline.feasible)
            || d.Bounds.Pipeline.lower_bound
               <= c.Bounds.Pipeline.lower_bound
                  +. (1e-6 *. (1. +. Float.abs c.Bounds.Pipeline.lower_bound)))
          clean_cells dl_cells)
      par_bounds.Bounds.Pipeline.per_class dl_bounds.Bounds.Pipeline.per_class
  in
  if not bounds_dominated then
    failwith "sweep benchmark: a deadline-degraded bound exceeds the clean one";
  Printf.printf
    "jobs=%d with deadline %.2fs: %.2fs (%s; grace %.2fs), degraded bounds \
     all <= clean\n\
     %!"
    par_jobs budget_s dl_s
    (if within_budget then "within budget" else "OVERRUN")
    dl_grace;
  let oc = open_out "BENCH_sweep.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "fig2-style sweep (bounds %d classes x 5 points + greedy-global 5 points)",
  "detected_cores": %d,
  "tasks": %d,
  "sequential_jobs": 1,
  "sequential_s": %.3f,
  "parallel_jobs": %d,
  "parallel_s": %.3f,
  "speedup": %.3f,
  "results_identical": true,
  "solve_paths": { %s },
  "quality": { %s },
  "pool": { %s },
  "faulted": {
    "spec": "%s",
    "parallel_s": %.3f,
    "overhead_ratio": %.3f,
    "results_identical": true,
    "solve_paths": { %s },
    "pool": { %s }
  },
  "deadline": {
    "budget_s": %.3f,
    "elapsed_s": %.3f,
    "grace_s": %.3f,
    "within_budget": %b,
    "degraded_bounds_dominated": %b,
    "quality": { %s }
  }
}
|}
    (List.length sweep_classes_fixture)
    cores tasks seq_s par_jobs par_s speedup (json_of_paths paths)
    (json_of_qualities par_bounds) (json_of_pool pool) bench_fault_spec
    faulted_s
    (if par_s > 0. then faulted_s /. par_s else 1.)
    (json_of_paths faulted_paths) (json_of_pool faulted_pool) budget_s dl_s
    dl_grace within_budget bounds_dominated (json_of_qualities dl_bounds);
  close_out oc;
  Printf.printf "wrote BENCH_sweep.json\n%!"

(* --- dist: the distributed-backend performance evidence -------------------- *)

(* `main.exe dist` runs the same fig2-style sweep once sequentially and
   once dispatched to two loopback TCP workers under injected network
   faults (session disconnects, garbled frames, refused connects). The
   faulted distributed run must produce results identical to the
   sequential one; BENCH_dist.json records its wall-clock next to the
   sequential time plus the supervision counters, so the recovery
   machinery's price under fire is tracked revision over revision. Drop
   faults are deliberately absent: they recover only through the full
   per-task timeout, which would measure the timeout constant, not the
   backend. *)
let bench_dist_fault_spec = "seed=7,disconnect=0.3,garble=0.2,partition=0.25"

let spawn_loopback_worker () =
  let lfd = Dist.Server.bind_listener ~port:0 () in
  let port = Dist.Server.bound_port lfd in
  match Unix.fork () with
  | 0 -> ( try Dist.Server.accept_loop lfd with _ -> Unix._exit 1)
  | pid ->
    Unix.close lfd;
    (port, pid)

let dist_benchmark () =
  let cores = Util.Parallel.available_cores () in
  Printf.printf "dist benchmark: 2 loopback workers, %d detected core(s)\n%!"
    cores;
  let seq_s, seq_sig, _ = run_sweep ~jobs:1 () in
  Printf.printf "jobs=1 local: %.2fs\n%!" seq_s;
  let p1, w1 = spawn_loopback_worker () in
  let p2, w2 = spawn_loopback_worker () in
  let kill_workers () =
    List.iter
      (fun pid ->
        (try Unix.kill pid Sys.sigkill with _ -> ());
        try ignore (Unix.waitpid [] pid) with _ -> ())
      [ w1; w2 ]
  in
  Fun.protect ~finally:kill_workers @@ fun () ->
  let workers = [ ("127.0.0.1", p1); ("127.0.0.1", p2) ] in
  (match Util.Faults.parse bench_dist_fault_spec with
  | Ok s -> Util.Faults.install s
  | Error msg -> failwith msg);
  let dist_s, dist_sig, dist_bounds =
    run_sweep ~jobs:1 ~workers ~timeout_s:300. ()
  in
  Util.Faults.install Util.Faults.none;
  if dist_sig <> seq_sig then
    failwith "dist benchmark: faulted distributed run changed the results";
  let pool = dist_bounds.Bounds.Pipeline.pool in
  let recoveries =
    pool.Util.Parallel.task_retries + pool.Util.Parallel.reconnects
    + pool.Util.Parallel.inline_recoveries + pool.Util.Parallel.timeouts
  in
  Printf.printf
    "2 workers with '%s': %.2fs, identical results, %d recovery events\n%!"
    bench_dist_fault_spec dist_s recoveries;
  let oc = open_out "BENCH_dist.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "fig2-style sweep dispatched to loopback TCP workers under network faults",
  "detected_cores": %d,
  "sequential_s": %.3f,
  "dist_workers": %d,
  "dist_sweep_s": %.3f,
  "dist_recoveries": %d,
  "overhead_ratio": %.3f,
  "results_identical": true,
  "fault_spec": "%s",
  "pool": { %s }
}
|}
    cores seq_s (List.length workers) dist_s recoveries
    (if seq_s > 0. then dist_s /. seq_s else 1.)
    bench_dist_fault_spec (json_of_pool pool);
  close_out oc;
  Printf.printf "wrote BENCH_dist.json\n%!"

(* --- lp: the LP-substrate performance evidence ---------------------------- *)

(* `main.exe lp` measures the fast-LP substrate end to end and writes
   BENCH_lp.json:

   - fused vs reference PDHG iteration throughput (same recurrence, same
     iterates — the bound delta is reported and must sit within 1e-9);
   - sparse matvec throughput in GFLOP-equivalents (2*nnz flops/product);
   - per-stage timings of one pipeline cell (permission analysis, model
     build, incremental rhs patch, presolve, prepare, prepared reuse);
   - the fig2-style sweep wall-clock against the sequential baseline
     recorded in BENCH_sweep.json by the previous revision — read before
     `main.exe sweep` overwrites it — with the jobs=1/jobs=4 identity
     check re-run on today's code. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let lp_benchmark () =
  let cs = Lazy.force web in
  (* The storage-constrained class is the sweep's dominant cost: its QoS
     cells run tens of thousands of PDHG iterations. *)
  let cls = Mcperf.Classes.storage_constrained in
  let spec = CS.qos_spec cs ~fraction:0.99 ~for_bounds:true () in
  let perm_s, perm = time (fun () -> Mcperf.Permission.compute spec cls) in
  let build_s, model = time (fun () -> Mcperf.Model.build perm) in
  let problem = model.Mcperf.Model.problem in
  let vars = Lp.Problem.nvars problem
  and rows = Lp.Problem.nrows problem
  and nnz = Lp.Problem.nnz problem in
  Printf.printf "lp benchmark: %d vars, %d rows, %d nnz\n%!" vars rows nnz;
  let patch_s, patched =
    time (fun () -> Mcperf.Model.with_fraction model 0.999)
  in
  let presolve_s, _ = time (fun () -> Lp.Presolve.run problem) in
  let prepare_s, prep = time (fun () -> Lp.Pdhg.prepare problem) in
  let reuse_s, _ =
    time (fun () ->
        Lp.Pdhg.prepare ~reuse:prep patched.Mcperf.Model.problem)
  in
  (* Fixed-budget solves: rel_tol 0 disables early convergence so both
     paths execute exactly [iters] iterations of the same recurrence. *)
  let iters = 4_000 in
  let options =
    { Lp.Pdhg.default_options with max_iters = iters; rel_tol = 0. }
  in
  (* Previous revision's fused throughput, read before this run
     overwrites BENCH_lp.json — same warn-and-skip handling as the
     BENCH_sweep.json baseline. *)
  let lp_baseline =
    read_baseline_num ~file:"BENCH_lp.json" ~key:"fused_iters_per_s"
  in
  (match lp_baseline with
  | Some b ->
    Printf.printf "baseline fused_iters_per_s from BENCH_lp.json: %.0f\n%!" b
  | None -> Printf.printf "no BENCH_lp.json baseline found\n%!");
  let fused_s, fused = time (fun () -> Lp.Pdhg.solve ~options problem) in
  let ref_s, reference =
    time (fun () -> Lp.Pdhg.solve_reference ~options problem)
  in
  let bound_delta =
    Float.abs (fused.Lp.Pdhg.best_bound -. reference.Lp.Pdhg.best_bound)
  in
  Printf.printf
    "pdhg %d iters: fused %.3fs (%.0f it/s), reference %.3fs (%.0f it/s), \
     %.2fx, bound delta %.3e\n\
     %!"
    iters fused_s
    (float_of_int iters /. fused_s)
    ref_s
    (float_of_int iters /. ref_s)
    (ref_s /. fused_s) bound_delta;
  (* Matvec throughput: a dense-equivalent flop count of 2*nnz per
     product (one multiply + one add per stored coefficient). *)
  let a = Lp.Problem.constraint_matrix (Lp.Problem.normalize_ge problem) in
  let x = Array.make vars 1. and y = Array.make rows 0. in
  let reps = 2_000 in
  let mul_s, () =
    time (fun () ->
        for _ = 1 to reps do
          Lp.Sparse.mul a x y
        done)
  in
  let mul_t_s, () =
    time (fun () ->
        for _ = 1 to reps do
          Lp.Sparse.mul_t a y x
        done)
  in
  let gflops s = float_of_int (2 * nnz * reps) /. s /. 1e9 in
  Printf.printf "matvec: mul %.3f GFLOP-equiv/s, mul_t %.3f GFLOP-equiv/s\n%!"
    (gflops mul_s) (gflops mul_t_s);
  (* End-to-end: the same fig2-style sweep the PR-1 baseline measured. *)
  let cores = Util.Parallel.available_cores () in
  warn_core_context ~file:"BENCH_sweep.json" ~cores;
  let baseline = read_baseline_sequential_s () in
  (match baseline with
  | Some b -> Printf.printf "baseline sequential_s from BENCH_sweep.json: %.3f\n%!" b
  | None -> Printf.printf "no BENCH_sweep.json baseline found\n%!");
  let seq_s, seq_sig, _ = run_sweep ~jobs:1 () in
  let par_s, par_sig, _ = run_sweep ~jobs:4 () in
  let results_identical = seq_sig = par_sig in
  if not results_identical then
    failwith "lp benchmark: parallel and sequential sweep results differ";
  let speedup =
    match baseline with Some b when seq_s > 0. -> b /. seq_s | _ -> 1.
  in
  Printf.printf "sweep jobs=1: %.2fs (baseline speedup %.2fx), jobs=4: %.2fs\n%!"
    seq_s speedup par_s;
  let oc = open_out "BENCH_lp.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "LP substrate: fused PDHG kernels, presolve wiring, incremental models",
  "detected_cores": %d,
  "fixture": "web nodes=10 scale=0.02 intervals=12, storage-constrained class",
  "model": { "vars": %d, "rows": %d, "nnz": %d },
  "stage_timings_s": {
    "permission": %.6f,
    "model_build": %.6f,
    "with_fraction_patch": %.6f,
    "presolve": %.6f,
    "prepare": %.6f,
    "prepare_reused": %.6f
  },
  "pdhg": {
    "iterations_timed": %d,
    "fused_s": %.3f,
    "fused_iters_per_s": %.0f,
    "reference_s": %.3f,
    "reference_iters_per_s": %.0f,
    "per_iteration_speedup": %.3f,
    "baseline_fused_iters_per_s": %s,
    "throughput_vs_baseline": %s,
    "bound_delta_vs_reference": %.3e,
    "bounds_within_1e-9": %b
  },
  "matvec": {
    "flops_per_product": %d,
    "mul_gflops_equiv": %.3f,
    "mul_t_gflops_equiv": %.3f
  },
  "sweep": {
    "baseline_sequential_s": %s,
    "baseline_source": "BENCH_sweep.json (previous revision, jobs=1)",
    "sequential_s": %.3f,
    "end_to_end_speedup": %.3f,
    "parallel_jobs4_s": %.3f,
    "results_identical": %b
  }
}
|}
    cores vars rows nnz perm_s build_s patch_s presolve_s prepare_s reuse_s
    iters
    fused_s
    (float_of_int iters /. fused_s)
    ref_s
    (float_of_int iters /. ref_s)
    (ref_s /. fused_s)
    (match lp_baseline with
    | Some b -> Printf.sprintf "%.0f" b
    | None -> "null")
    (match lp_baseline with
    | Some b when b > 0. ->
      Printf.sprintf "%.3f" (float_of_int iters /. fused_s /. b)
    | _ -> "null")
    bound_delta
    (bound_delta <= 1e-9)
    (2 * nnz) (gflops mul_s) (gflops mul_t_s)
    (match baseline with
    | Some b -> Printf.sprintf "%.3f" b
    | None -> "null")
    seq_s speedup par_s results_identical;
  close_out oc;
  Printf.printf "wrote BENCH_lp.json\n%!"

(* --- obs: observability overhead ------------------------------------------ *)

(* `main.exe obs` prices the observability layer on the fig2-style sweep
   at jobs=4. Three legs: instrumentation compiled in but disabled (the
   default ambient config), enabled with the null sink (every span and
   counter exercised, trace discarded), and enabled with a JSONL file
   sink (worker payloads shipped over the pool pipe, merged, written).
   The null-sink leg is the acceptance gate: all instrumentation sits
   behind an `if enabled` check on an immutable config, so its overhead
   must be noise-level. Each timed leg takes the minimum of [reps] runs
   to damp scheduler noise. *)

let obs_trace_file = "BENCH_obs_trace.jsonl"

(* Minimal structural validation of the merged JSONL trace: every line
   is a {...} object, span begins and ends balance, and spans from the
   worker "task:" scopes actually made it into the parent's merge. *)
let validate_trace path =
  let ic = open_in path in
  let lines = ref 0 and begins = ref 0 and ends = ref 0 in
  let task_scopes = Hashtbl.create 8 in
  let well_formed = ref true in
  let contains line sub =
    let n = String.length line and m = String.length sub in
    let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
    go 0
  in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         incr lines;
         if
           not
             (String.length line >= 2
             && line.[0] = '{'
             && line.[String.length line - 1] = '}')
         then well_formed := false;
         if contains line "\"kind\":\"B\"" then incr begins;
         if contains line "\"kind\":\"E\"" then incr ends;
         (* Events always serialize as {"scope":"<name>",... — pull the
            scope value out and remember the distinct task:* ones. *)
         let prefix = "{\"scope\":\"" in
         let plen = String.length prefix in
         if String.length line > plen && String.sub line 0 plen = prefix then begin
           match String.index_from_opt line plen '"' with
           | Some stop ->
             let scope = String.sub line plen (stop - plen) in
             if String.length scope >= 5 && String.sub scope 0 5 = "task:"
             then Hashtbl.replace task_scopes scope ()
           | None -> well_formed := false
         end
       end
     done
   with End_of_file -> ());
  close_in ic;
  (!lines, !begins, !ends, Hashtbl.length task_scopes, !well_formed)

let obs_benchmark () =
  let jobs = 4 and reps = 3 in
  Printf.printf
    "obs benchmark: fig2-style sweep, jobs=%d, min of %d interleaved rounds\n%!"
    jobs reps;
  (* The three legs run interleaved — disabled, null, jsonl, repeat —
     so slow machine-wide drift (thermal, background daemons) hits all
     legs alike instead of biasing whichever leg ran last; each leg
     keeps its minimum across rounds. A sub-2% overhead is invisible to
     leg-at-a-time timing on a noisy host. *)
  let base_s = ref infinity
  and null_s = ref infinity
  and jsonl_s = ref infinity in
  let sg = ref None in
  let note (s, signature, _) best =
    (match !sg with
    | None -> sg := Some signature
    | Some prev ->
      if prev <> signature then
        failwith "obs benchmark: instrumentation changed the sweep results");
    if s < !best then best := s
  in
  let jsonl_cfg =
    { Obs.Config.default with sink = Obs.Config.Jsonl_file obs_trace_file }
  in
  for _ = 1 to reps do
    Obs.Config.install Obs.Config.disabled;
    note (run_sweep ~jobs ()) base_s;
    note (run_sweep ~obs:Obs.Config.default ~jobs ()) null_s;
    (* The JSONL sink appends on flush; start each round from a clean
       file so the validated trace is exactly one sweep's. *)
    if Sys.file_exists obs_trace_file then Sys.remove obs_trace_file;
    note (run_sweep ~obs:jsonl_cfg ~jobs ()) jsonl_s;
    (* Flush while the JSONL config is still installed. *)
    Obs.Sink.flush ()
  done;
  Obs.Config.install Obs.Config.disabled;
  let base_s = !base_s and null_s = !null_s and jsonl_s = !jsonl_s in
  Printf.printf "instrumentation disabled: %.2fs\n%!" base_s;
  Printf.printf "null sink: %.2fs\n%!" null_s;
  Printf.printf "jsonl sink: %.2fs\n%!" jsonl_s;
  let lines, begins, ends, task_scopes, well_formed =
    validate_trace obs_trace_file
  in
  let balance_ok = begins = ends && begins > 0 in
  Printf.printf
    "trace %s: %d events, %d/%d begin/end, %d task scopes, results identical\n%!"
    obs_trace_file lines begins ends task_scopes;
  if not well_formed then
    failwith "obs benchmark: malformed JSONL line in the merged trace";
  if not balance_ok then
    failwith "obs benchmark: unbalanced spans in the merged trace";
  if task_scopes = 0 then
    failwith "obs benchmark: no worker spans made it into the merged trace";
  let ratio x = if base_s > 0. then x /. base_s else 1. in
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "observability overhead on the fig2-style sweep",
  "jobs": %d,
  "runs_per_leg": %d,
  "baseline_s": %.3f,
  "null_sink_s": %.3f,
  "null_sink_overhead_ratio": %.4f,
  "jsonl_sink_s": %.3f,
  "jsonl_sink_overhead_ratio": %.4f,
  "results_identical": true,
  "trace": {
    "file": "%s",
    "events": %d,
    "span_begins": %d,
    "span_ends": %d,
    "task_scopes": %d,
    "well_formed": %b
  }
}
|}
    jobs reps base_s null_s (ratio null_s) jsonl_s (ratio jsonl_s)
    obs_trace_file lines begins ends task_scopes well_formed;
  close_out oc;
  Printf.printf "wrote BENCH_obs.json\n%!"

(* --- tree: the exact DP vs the LP substrate on tree instances ------------- *)

(* `main.exe tree` times Bounds.Pipeline.compute with the Auto solver —
   which routes tree-eligible general cells through the closest-
   allocation DP — against the same cell forced through exact simplex
   (40-node random tree) and through PDHG (121-node balanced tree). The
   DP must win by construction (it is O(pareto-front) on the tree while
   the LP rebuilds the full MC-PERF model); the JSON records by how
   much, and the bound orderings are asserted on every run. *)

module TS = Replica_select.Tree_scenario

let min_time reps f =
  let best = ref infinity and result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let s = Unix.gettimeofday () -. t0 in
    if s < !best then best := s;
    result := Some r
  done;
  (!best, Option.get !result)

let tree_benchmark () =
  let reps = 5 in
  let leg name (scen : TS.t) forced =
    let spec = scen.TS.spec in
    let dp_s, dp_cell =
      min_time reps (fun () ->
          Bounds.Pipeline.compute ?placeable:scen.TS.placeable spec
            Mcperf.Classes.general)
    in
    if dp_cell.Bounds.Pipeline.solve_path <> Bounds.Pipeline.Path_tree_dp
    then failwith (name ^ ": Auto did not route through the tree DP");
    let lp_s, lp_cell =
      min_time reps (fun () ->
          Bounds.Pipeline.compute ~solver:forced
            ?placeable:scen.TS.placeable spec Mcperf.Classes.general)
    in
    let dp = dp_cell.Bounds.Pipeline.lower_bound in
    let lp = lp_cell.Bounds.Pipeline.lower_bound in
    if lp > dp +. (1e-6 *. (1. +. Float.abs dp)) then
      failwith (name ^ ": LP bound above the DP optimum");
    Printf.printf
      "%-22s dp %8.4fs (bound %8.2f)   lp %8.4fs (bound %8.2f)   speedup %6.1fx\n%!"
      name dp_s dp lp_s lp (lp_s /. dp_s);
    (dp_s, dp, lp_s, lp)
  in
  Printf.printf
    "tree benchmark: exact DP vs forced LP producers, min of %d runs\n%!" reps;
  let small = TS.make ~seed:7 (TS.Random { nodes = 40 }) in
  let large = TS.make ~seed:9 (TS.Balanced { fanout = 3; depth = 4 }) in
  let sm_dp_s, sm_dp, sm_lp_s, sm_lp =
    leg "random-40/simplex" small Bounds.Pipeline.Exact_simplex
  in
  let lg_dp_s, lg_dp, lg_lp_s, lg_lp =
    leg "balanced-121/pdhg" large
      (Bounds.Pipeline.First_order
         {
           Lp.Pdhg.default_options with
           Lp.Pdhg.max_iters = 20_000;
           rel_tol = 1e-6;
         })
  in
  let speedup dp lp = if dp > 0. then lp /. dp else 1. in
  let oc = open_out "BENCH_tree.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "exact tree DP vs forced LP producers",
  "runs_per_leg": %d,
  "detected_cores": %d,
  "small": {
    "instance": "%s",
    "tree_dp_s": %.4f,
    "tree_dp_bound": %.4f,
    "tree_lp_s": %.4f,
    "tree_lp_bound": %.4f,
    "tree_dp_speedup": %.2f
  },
  "large": {
    "instance": "%s",
    "tree_dp_large_s": %.4f,
    "tree_dp_large_bound": %.4f,
    "tree_pdhg_s": %.4f,
    "tree_pdhg_bound": %.4f,
    "tree_pdhg_speedup": %.2f
  }
}
|}
    reps
    (Util.Parallel.available_cores ())
    small.TS.name sm_dp_s sm_dp sm_lp_s sm_lp (speedup sm_dp_s sm_lp_s)
    large.TS.name lg_dp_s lg_dp lg_lp_s lg_lp (speedup lg_dp_s lg_lp_s);
  close_out oc;
  Printf.printf "wrote BENCH_tree.json\n%!"

(* --- scale: bundled + sharded Lagrangian at 200+ nodes -------------------- *)

module SS = Replica_select.Scale_scenario

(* `main.exe scale` measures the scale-sweep machinery on the CDN family
   and writes BENCH_scale.json:

   - the ratio leg runs the SAME instance and iteration budget bundled
     and forced-unbundled; the family is homogeneous, so the bound delta
     must be exactly 0 — any drift is a bundling bug, not float noise —
     and the wall-clock ratio is the bundling speedup;
   - the headline leg is the full fig2-style 3-point sweep at 229 nodes
     and 10k objects;
   - the identity leg re-runs the sweep at jobs=1 and jobs=4 and
     requires the outcomes to agree under structural Marshal. *)
let scale_benchmark () =
  let cores = Util.Parallel.available_cores () in
  let scen = SS.make () in
  let nodes = SS.node_count scen and objects = SS.object_count scen in
  Printf.printf "scale benchmark: %s, %d detected core(s)\n%!" scen.SS.name
    cores;
  warn_core_context ~file:"BENCH_scale.json" ~cores;
  let spec = SS.qos_spec scen ~fraction:0.99 in
  let cls = Mcperf.Classes.general in
  let ratio_iters = 40 in
  let t0 = Unix.gettimeofday () in
  let bundled = Bounds.Lagrangian.bound ~iterations:ratio_iters spec cls in
  let bundled_s = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let unbundled =
    Bounds.Lagrangian.bound ~iterations:ratio_iters ~bundling:false spec cls
  in
  let unbundled_s = Unix.gettimeofday () -. t0 in
  let bound_delta =
    bundled.Bounds.Lagrangian.bound -. unbundled.Bounds.Lagrangian.bound
  in
  if bound_delta <> 0. then
    failwith
      (Printf.sprintf
         "scale benchmark: bundled and unbundled bounds differ by %g on a \
          homogeneous instance"
         bound_delta);
  let bundle_ratio =
    float_of_int objects /. float_of_int (max 1 bundled.Bounds.Lagrangian.bundles)
  in
  let bundling_speedup =
    if bundled_s > 0. then unbundled_s /. bundled_s else 1.
  in
  Printf.printf
    "ratio leg (%d iters): unbundled %.2fs, bundled %.2fs -> %.1fx \
     (%d bundles, ratio %.1fx, bound delta exactly 0)\n\
     %!"
    ratio_iters unbundled_s bundled_s bundling_speedup
    bundled.Bounds.Lagrangian.bundles bundle_ratio;
  let fractions = [ 0.9; 0.95; 0.99 ] in
  let sweep_at jobs =
    Bounds.Lagrangian.sweep ~iterations:40 ~jobs spec cls ~fractions
  in
  let t0 = Unix.gettimeofday () in
  let sweep1 = sweep_at 1 in
  let sweep_s = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let sweep4 = sweep_at 4 in
  let sweep4_s = Unix.gettimeofday () -. t0 in
  let signature s = Marshal.to_string s [ Marshal.No_sharing ] in
  let jobs_identical = signature sweep1 = signature sweep4 in
  if not jobs_identical then
    failwith "scale benchmark: jobs=1 and jobs=4 sweeps differ";
  Printf.printf
    "sweep %d nodes x %d objects x %d points: jobs=1 %.2fs, jobs=4 %.2fs, \
     identical outcomes\n\
     %!"
    nodes objects (List.length fractions) sweep_s sweep4_s;
  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "CDN scale family: bundled + sharded Lagrangian sweep",
  "detected_cores": %d,
  "instance": "%s",
  "scale_nodes": %d,
  "scale_objects": %d,
  "bundles": %d,
  "bundle_ratio": %.2f,
  "rescaled_members": %d,
  "ratio_leg": {
    "iterations": %d,
    "unbundled_s": %.3f,
    "bundled_s": %.3f,
    "speedup": %.2f,
    "bound_delta": %.17g
  },
  "scale_sweep_s": %.3f,
  "scale_sweep_jobs4_s": %.3f,
  "jobs_identical": %b
}
|}
    cores scen.SS.name nodes objects bundled.Bounds.Lagrangian.bundles
    bundle_ratio bundled.Bounds.Lagrangian.rescaled_members ratio_iters
    unbundled_s bundled_s bundling_speedup bound_delta sweep_s sweep4_s
    jobs_identical;
  close_out oc;
  Printf.printf "wrote BENCH_scale.json\n%!"

(* --- avail: failure scenarios, degraded replay, scenario LP --------------- *)

(* `main.exe avail` prices the availability layer and writes
   BENCH_avail.json:

   - degradation-replay throughput: the greedy-global reference
     placement replayed against the seeded outage timeline, in
     steps/second (min of [reps] runs), with the jobs=1 and jobs=4
     replays required to agree structurally;
   - the fragility of that placement over the sampled scenario set (the
     figavail headline number for this fixture);
   - scenario-LP overhead: the general-class expected-cost sweep
     (Bounds.Avail_bound) timed against the plain nominal sweep_qos on
     the same fractions — the ratio is the price of carrying the
     scenarios' coverage terms through the fraction sweep's
     prepare/warm-start cache. The scenario bound must sit at or below
     the reference placement's measured expected degraded cost (the
     lower-bound validity the tests pin down), asserted on every run. *)

let avail_benchmark () =
  let reps = 3 in
  let cs = Lazy.force web in
  let sim_spec = CS.qos_spec cs ~fraction:0.95 ~for_bounds:false () in
  let bound_spec = CS.qos_spec cs ~fraction:0.95 ~for_bounds:true () in
  let sys = sim_spec.Mcperf.Spec.system in
  let groups = Avail.Groups.derive sys in
  (* A harsher draw than the default spec: with the case studies'
     gamma = 0 only origin-down scenarios contribute coverage terms to
     the scenario LP, and at the default 2% per-node rate a 64-scenario
     draw can easily contain none (leaving the LP the same size as the
     nominal model). 64 scenarios at a 10% rate reliably include several,
     so the overhead leg times a model that genuinely carries scenario
     terms. *)
  let sspec = { Avail.Scenario.default with count = 64; node_prob = 0.1 } in
  let scenarios = Avail.Scenario.sample_all sspec sys ~groups in
  let tl = Avail.Scenario.timeline sspec sys ~groups in
  let origin_down =
    Array.fold_left
      (fun acc (s : Avail.Scenario.t) ->
        if s.Avail.Scenario.down.(sys.Topology.System.origin) then acc + 1
        else acc)
      0 scenarios
  in
  Printf.printf
    "avail benchmark: %d groups, %d scenarios (%d origin-down), %d-step \
     timeline, min of %d runs\n\
     %!"
    (Array.length groups) (Array.length scenarios) origin_down
    tl.Avail.Scenario.steps reps;
  let deployed =
    match Sim.Runner.greedy_global ~spec:sim_spec () with
    | Some d -> d
    | None -> failwith "avail benchmark: greedy-global met no goal"
  in
  let placement =
    match deployed.Sim.Runner.placement with
    | Some p -> p
    | None -> failwith "avail benchmark: deployment carries no placement"
  in
  let perm = Mcperf.Permission.compute sim_spec Mcperf.Classes.general in
  let replay jobs =
    Sim.Runner.degradation_replay ~jobs ~perm ~placement ~timeline:tl ()
  in
  let baseline =
    read_baseline_num ~file:"BENCH_avail.json" ~key:"replay_steps_per_s"
  in
  (match baseline with
  | Some b ->
    Printf.printf "baseline replay_steps_per_s from BENCH_avail.json: %.0f\n%!"
      b
  | None -> Printf.printf "no BENCH_avail.json baseline found\n%!");
  let replay_s, r1 = min_time reps (fun () -> replay 1) in
  let _, r4 = min_time 1 (fun () -> replay 4) in
  (* Each replay step is a pure function of (perm, placement, down mask)
     and the pool preserves order, so the two widths must agree exactly. *)
  if r1 <> r4 then
    failwith "avail benchmark: replay differs between jobs=1 and jobs=4";
  let steps_per_s = float_of_int tl.Avail.Scenario.steps /. replay_s in
  Printf.printf "replay jobs=1: %.4fs (%.0f steps/s), jobs=4 identical\n%!"
    replay_s steps_per_s;
  let a = Avail.Survive.assess perm placement ~scenarios in
  Printf.printf
    "greedy-global fragility %.4f (expected %.1f vs nominal %.1f over %d \
     scenarios)\n\
     %!"
    a.Avail.Survive.fragility a.Avail.Survive.expected_cost
    a.Avail.Survive.base_cost a.Avail.Survive.scenarios;
  let fractions = [ 0.95; 0.99; 0.999 ] in
  let nominal_s, _ =
    min_time reps (fun () ->
        Bounds.Pipeline.sweep_qos bound_spec fractions Mcperf.Classes.general)
  in
  let scen_s, cells =
    min_time reps (fun () ->
        Bounds.Avail_bound.expected_cost_cells bound_spec
          Mcperf.Classes.general ~scenarios ~fractions)
  in
  let head = List.hd cells in
  let reused_cells =
    List.length (List.filter (fun c -> c.Bounds.Avail_bound.reused) cells)
  in
  let lb = head.Bounds.Avail_bound.expected_bound in
  let bound_ok =
    lb
    <= a.Avail.Survive.expected_cost
       +. (1e-6 *. (1. +. Float.abs a.Avail.Survive.expected_cost))
  in
  if not bound_ok then
    failwith
      (Printf.sprintf
         "avail benchmark: scenario-LP bound %.4f above the measured \
          expected cost %.4f"
         lb a.Avail.Survive.expected_cost);
  let overhead = if nominal_s > 0. then scen_s /. nominal_s else 1. in
  Printf.printf
    "scenario LP (%d vars, %d nominal): sweep %.3fs vs nominal %.3fs \
     (overhead %.2fx, %d/%d cells reused), bound %.1f <= expected %.1f\n\
     %!"
    head.Bounds.Avail_bound.vars head.Bounds.Avail_bound.nominal_vars scen_s
    nominal_s overhead reused_cells (List.length cells) lb
    a.Avail.Survive.expected_cost;
  let oc = open_out "BENCH_avail.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "availability layer: degraded replay, fragility, scenario LP",
  "detected_cores": %d,
  "fixture": "web nodes=10 scale=0.02 intervals=12, greedy-global reference placement",
  "groups": %d,
  "avail_scenarios": %d,
  "timeline_steps": %d,
  "avail_replay_s": %.4f,
  "replay_steps_per_s": %.0f,
  "baseline_replay_steps_per_s": %s,
  "replay_vs_baseline": %s,
  "replay_jobs_identical": true,
  "avail_fragility": %.4f,
  "expected_degraded_cost": %.3f,
  "nominal_cost": %.3f,
  "scenario_lp": {
    "fractions": %d,
    "vars": %d,
    "nominal_vars": %d,
    "rows": %d,
    "reused_cells": %d,
    "nominal_sweep_s": %.3f,
    "scenario_sweep_s": %.3f,
    "overhead_ratio": %.3f,
    "bound_below_measured_expected": %b
  }
}
|}
    (Util.Parallel.available_cores ())
    (Array.length groups) (Array.length scenarios) tl.Avail.Scenario.steps
    replay_s steps_per_s
    (match baseline with
    | Some b -> Printf.sprintf "%.0f" b
    | None -> "null")
    (match baseline with
    | Some b when b > 0. -> Printf.sprintf "%.3f" (steps_per_s /. b)
    | _ -> "null")
    a.Avail.Survive.fragility a.Avail.Survive.expected_cost
    a.Avail.Survive.base_cost (List.length fractions)
    head.Bounds.Avail_bound.vars head.Bounds.Avail_bound.nominal_vars
    head.Bounds.Avail_bound.rows reused_cells nominal_s scen_s overhead
    bound_ok;
  close_out oc;
  Printf.printf "wrote BENCH_avail.json\n%!"

(* --- online service benchmark: epochs/s and the warm-start payoff ---------- *)

(* The online engine's claim is twofold: it sustains a re-placement
   cadence (epochs/s), and warm-starting each epoch's class bounds from
   the previous epoch's solution beats solving cold. The solver is
   forced to PDHG so the warm start has iterations to save — under Auto
   these instances would route to the simplex and the comparison would
   measure nothing. Bounds from either path are valid at any iterate, so
   the run also asserts regret stayed nonnegative both ways. *)
let online_benchmark () =
  let reps = 2 in
  let cs = Lazy.force web in
  let intervals = 12 and epoch_intervals = 2 in
  let interval_s =
    Workload.Trace.duration_s cs.CS.trace /. float_of_int intervals
  in
  let config warm =
    {
      Online.Engine.system = cs.CS.system;
      interval_s;
      epoch_intervals;
      costs = Mcperf.Spec.default_costs;
      goal = Mcperf.Spec.Qos { tlat_ms = 150.; fraction = 0.95 };
      placeable = None;
      strategies =
        [
          ("greedy-global", Heuristics.Greedy_global.strategy);
          ("proportional", Heuristics.Proportional.strategy);
        ];
      solver = Bounds.Pipeline.First_order Lp.Pdhg.default_options;
      warm;
      jobs = 1;
    }
  in
  let solve_total epochs =
    List.fold_left
      (fun acc (e : Online.Engine.epoch) -> acc +. e.Online.Engine.solve_s)
      0. epochs
  in
  let assert_regret label epochs =
    List.iter
      (fun (e : Online.Engine.epoch) ->
        List.iter
          (fun (d : Online.Engine.decision) ->
            match d.Online.Engine.regret with
            | Some r when r < -1e-9 ->
              failwith
                (Printf.sprintf
                   "online benchmark (%s): negative regret %.6f for %s at \
                    epoch %d"
                   label r d.Online.Engine.strategy e.Online.Engine.index)
            | _ -> ())
          e.Online.Engine.decisions)
      epochs
  in
  let warm_total_s, (warm_t, warm_epochs) =
    min_time reps (fun () -> Online.Engine.run (config true) ~trace:cs.CS.trace)
  in
  let _cold_total_s, (cold_t, cold_epochs) =
    min_time reps (fun () ->
        Online.Engine.run (config false) ~trace:cs.CS.trace)
  in
  assert_regret "warm" warm_epochs;
  assert_regret "cold" cold_epochs;
  if Online.Engine.warm_lifts cold_t <> 0 then
    failwith "online benchmark: cold handle reported warm lifts";
  if Online.Engine.warm_lifts warm_t = 0 then
    failwith "online benchmark: warm handle never lifted a prior solution";
  let warm_solve_s = solve_total warm_epochs in
  let cold_solve_s = solve_total cold_epochs in
  let n_epochs = List.length warm_epochs in
  let epochs_per_s =
    if warm_total_s > 0. then float_of_int n_epochs /. warm_total_s else 0.
  in
  let warm_speedup =
    if warm_solve_s > 0. then cold_solve_s /. warm_solve_s else 1.
  in
  Printf.printf
    "online: %d epochs in %.3fs (%.2f epochs/s), solve warm %.3fs vs cold \
     %.3fs (speedup %.2fx, %d/%d lifted)\n\
     %!"
    n_epochs warm_total_s epochs_per_s warm_solve_s cold_solve_s warm_speedup
    (Online.Engine.warm_lifts warm_t)
    (Online.Engine.bound_solves warm_t);
  let oc = open_out "BENCH_online.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "online placement service: epoch loop and warm-started bounds",
  "detected_cores": %d,
  "fixture": "web nodes=10 scale=0.02 intervals=12 epoch=2, PDHG forced, greedy-global + proportional",
  "online_epochs": %d,
  "online_total_s": %.4f,
  "online_epochs_s": %.4f,
  "warm_solve_s": %.4f,
  "cold_solve_s": %.4f,
  "online_warm_speedup": %.4f,
  "warm_lifts": %d,
  "bound_solves": %d,
  "regret_nonnegative": true
}
|}
    (Util.Parallel.available_cores ())
    n_epochs warm_total_s epochs_per_s warm_solve_s cold_solve_s warm_speedup
    (Online.Engine.warm_lifts warm_t)
    (Online.Engine.bound_solves warm_t);
  close_out oc;
  Printf.printf "wrote BENCH_online.json\n%!"

(* --- driver ------------------------------------------------------------------ *)

let benchmark test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.) ~stabilize:false
      ~kde:None ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

let print_results results =
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> est
        | Some _ | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Printf.printf "%-44s %16s\n" "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-44s %16s\n" name pretty)
    rows

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "sweep" then sweep_benchmark ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "lp" then lp_benchmark ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "obs" then obs_benchmark ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "scale" then
    scale_benchmark ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "tree" then
    tree_benchmark ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "avail" then
    avail_benchmark ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "dist" then
    dist_benchmark ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "online" then
    online_benchmark ()
  else
    List.iter
      (fun test ->
        let results = benchmark test in
        print_results results;
        print_newline ())
      [ substrate_tests; fig1_tests; fig2_tests; fig3_tests; scale_tests ]
